"""The acceptance-gating mutation self-tests, run as pytest cases.

Each analysis layer must (a) report zero findings on the real tree and
(b) flag its seeded defect injection with a precise report.  These are
the same checks ``python -m repro.analysis selftest`` runs in CI.
"""

import pytest

from repro.analysis.mutation import (format_reports,
                                     selftest_flow_locks,
                                     selftest_flow_ownership,
                                     selftest_lint,
                                     selftest_pool_lint, selftest_races,
                                     selftest_wallclock_lint,
                                     selftest_waves)


@pytest.fixture(scope="module")
def waves_report():
    return selftest_waves()


@pytest.fixture(scope="module")
def races_report():
    return selftest_races()


@pytest.fixture(scope="module")
def lint_report():
    return selftest_lint()


class TestWavesSelftest:
    def test_passes(self, waves_report):
        assert waves_report.ok, format_reports([waves_report])

    def test_clean_stream_has_no_findings(self, waves_report):
        assert waves_report.clean_findings == []

    def test_duplicate_write_reported_precisely(self, waves_report):
        w1 = [f for f in waves_report.injected_findings
              if f.rule == "WAVE001"]
        assert w1, "overlapping same-wave write not flagged"
        f = w1[0]
        # The report names the aliased panel buffer, both task indices
        # and the byte extent of the overlap.
        assert f.details["buffer"][0] == "panel"
        assert f.details["task_a"] != f.details["task_b"]
        assert f.details["byte_range"][1] > f.details["byte_range"][0]

    def test_order_inversion_reported(self, waves_report):
        assert any(f.rule == "WAVE002"
                   for f in waves_report.injected_findings)


class TestRacesSelftest:
    def test_passes(self, races_report):
        assert races_report.ok, format_reports([races_report])

    def test_checked_factorization_clean(self, races_report):
        assert races_report.clean_findings == []

    def test_unfenced_rput_reported(self, races_report):
        hb3 = [f for f in races_report.injected_findings
               if f.rule == "HB003"]
        assert hb3 and "unfenced rput" in hb3[0].message

    def test_signal_before_put_and_starvation_reported(self, races_report):
        fired = {f.rule for f in races_report.injected_findings}
        assert {"HB002", "HB004"} <= fired


class TestPoolLintSelftest:
    @pytest.fixture(scope="class")
    def report(self):
        return selftest_pool_lint()

    def test_passes(self, report):
        assert report.ok, format_reports([report])

    def test_real_storage_module_clean(self, report):
        assert report.clean_findings == []

    def test_raw_alloc_reported(self, report):
        findings = report.injected_findings
        assert [f.rule for f in findings] == ["REP106"]
        assert "np.zeros" in findings[0].message
        assert "BufferPool" in findings[0].message


class TestWallClockLintSelftest:
    @pytest.fixture(scope="class")
    def report(self):
        return selftest_wallclock_lint()

    def test_passes(self, report):
        assert report.ok, format_reports([report])

    def test_real_runtime_module_clean(self, report):
        assert report.clean_findings == []

    def test_wallclock_read_reported(self, report):
        findings = report.injected_findings
        assert [f.rule for f in findings] == ["REP107"]
        assert "time.monotonic" in findings[0].message


class TestFlowOwnershipSelftest:
    @pytest.fixture(scope="class")
    def report(self):
        return selftest_flow_ownership()

    def test_passes(self, report):
        assert report.ok, format_reports([report])

    def test_real_layers_clean(self, report):
        assert report.clean_findings == []

    def test_all_four_rules_fire(self, report):
        fired = {f.rule for f in report.injected_findings}
        assert {"REP200", "REP201", "REP202", "REP203"} <= fired

    def test_precision_pseudo_rules_absent(self, report):
        # Every planted defect was flagged at its exact line: no unmet
        # "<rule>-precise" expectation was appended.
        assert not any(r.endswith("-precise") for r in report.expect_rules)

    def test_findings_name_the_probe_functions(self, report):
        messages = " ".join(f.message for f in report.injected_findings)
        for probe in ("_flow_rep200_probe", "_flow_rep201_probe",
                      "_flow_rep202_probe", "_flow_rep203_probe"):
            assert probe in messages


class TestFlowLocksSelftest:
    @pytest.fixture(scope="class")
    def report(self):
        return selftest_flow_locks()

    def test_passes(self, report):
        assert report.ok, format_reports([report])

    def test_real_layers_clean(self, report):
        assert report.clean_findings == []

    def test_both_rules_fire_precisely(self, report):
        fired = {f.rule for f in report.injected_findings}
        assert {"REP210", "REP211"} <= fired
        assert not any(r.endswith("-precise") for r in report.expect_rules)

    def test_inversion_names_both_sites(self, report):
        f = next(f for f in report.injected_findings if f.rule == "REP211")
        assert "core/tracing.py" in f.message
        assert "service/caches.py" in f.message


class TestLintSelftest:
    def test_passes(self, lint_report):
        assert lint_report.ok, format_reports([lint_report])

    def test_injection_site_still_exists(self, lint_report):
        # Guards against the handler being renamed without updating the
        # self-test: the report degrades to "site not found" then.
        assert "not found" not in lint_report.notes

    def test_undeclared_mutation_reported_precisely(self, lint_report):
        findings = lint_report.injected_findings
        assert [f.rule for f in findings] == ["REP105"]
        assert "_op_syrk_sub" in findings[0].message
        assert "a_ref" in findings[0].message
