"""Tests of the flow-sensitive buffer-ownership analysis (REP200-203)."""

from textwrap import dedent

from repro.analysis.ownership import (DEFAULT_OWNERSHIP_MODULES,
                                      ModuleSource, analyze_ownership)


def findings_for(source, rel="memory/pool.py"):
    return analyze_ownership([ModuleSource(rel, dedent(source))])


def rules(source, rel="memory/pool.py"):
    return [f.rule for f in findings_for(source, rel)]


class TestCleanPatterns:
    def test_take_then_give(self):
        assert rules("""
            def run(pool, shape):
                buf = pool.take(shape)
                work(buf)
                pool.give(buf)
        """) == []

    def test_try_finally_give(self):
        assert rules("""
            def run(pool, shape):
                buf = pool.take(shape)
                try:
                    work(buf)
                finally:
                    pool.give(buf)
        """) == []

    def test_per_iteration_take_give(self):
        assert rules("""
            def run(pool, shapes):
                for shape in shapes:
                    buf = pool.take(shape)
                    work(buf)
                    pool.give(buf)
        """) == []

    def test_returned_buffer_escapes(self):
        # Returning the buffer transfers ownership to the caller.
        assert rules("""
            def grab(pool, shape):
                buf = pool.take(shape)
                return buf
        """) == []

    def test_stored_buffer_escapes(self):
        assert rules("""
            def grab(self, pool, shape):
                self.buf = pool.take(shape)
        """) == []

    def test_release_through_helper_summary(self):
        # give() reached through a local helper counts as a release.
        assert rules("""
            def _drop(pool, buf):
                pool.give(buf)

            def run(pool, shape):
                buf = pool.take(shape)
                _drop(pool, buf)
        """) == []

    def test_real_default_modules_clean(self):
        from pathlib import Path

        base = Path(__file__).resolve().parents[2] / "src" / "repro"
        mods = [ModuleSource(rel, (base / rel).read_text())
                for rel in DEFAULT_OWNERSHIP_MODULES]
        assert analyze_ownership(mods) == []


class TestLeaks:
    def test_leak_on_fallthrough(self):
        assert rules("""
            def run(pool, shape):
                buf = pool.take(shape)
                work(buf)
        """) == ["REP200"]

    def test_leak_on_exception_path(self):
        findings = findings_for("""
            def run(pool, shape, check):
                buf = pool.take(shape)
                try:
                    check(buf)
                except ValueError:
                    return None
                pool.give(buf)
        """)
        assert [f.rule for f in findings] == ["REP200"]
        # Flagged at the handler's early return, not at the happy path.
        assert findings[0].where.endswith(":7")

    def test_rebind_while_taken(self):
        assert "REP200" in rules("""
            def run(pool, shape):
                buf = pool.take(shape)
                buf = None
                return buf
        """)

    def test_discarded_acquire(self):
        assert rules("""
            def run(pool, shape):
                pool.take(shape)
        """) == ["REP200"]


class TestMisuse:
    def test_double_give(self):
        findings = findings_for("""
            def run(pool, shape):
                buf = pool.take(shape)
                pool.give(buf)
                pool.give(buf)
        """)
        assert [f.rule for f in findings] == ["REP201"]
        assert findings[0].where.endswith(":5")

    def test_use_after_give(self):
        findings = findings_for("""
            def run(pool, shape):
                buf = pool.take(shape)
                pool.give(buf)
                return float(buf[0])
        """)
        assert [f.rule for f in findings] == ["REP202"]

    def test_conditional_give_diverges_at_join(self):
        findings = findings_for("""
            def run(pool, shape, flag):
                buf = pool.take(shape)
                if flag:
                    pool.give(buf)
                buf.fill(0)
        """)
        assert [f.rule for f in findings] == ["REP203"]
        assert findings[0].where.endswith(":6")

    def test_both_branches_give_is_clean(self):
        assert rules("""
            def run(pool, shape, flag):
                buf = pool.take(shape)
                if flag:
                    pool.give(buf)
                else:
                    pool.give(buf)
        """) == []


class TestLedgerResources:
    def test_unbalanced_charge_flagged(self):
        assert rules("""
            def run(self, nbytes):
                self.ledger.charge(0, "host", nbytes, label="x")
        """) == ["REP200"]

    def test_balanced_charge_release_clean(self):
        assert rules("""
            def run(self, nbytes):
                self.ledger.charge(0, "host", nbytes, label="x")
                work()
                self.ledger.release(0, "host", nbytes, label="x")
        """) == []


class TestDirectives:
    def test_allow_suppresses_named_rule(self):
        assert rules("""
            # flow: allow(REP200)
            def run(pool, shape):
                buf = pool.take(shape)
        """) == []

    def test_transfer_suppresses_leak_only(self):
        source = """
            # flow: transfer
            def run(pool, shape):
                buf = pool.take(shape)
                pool.give(buf)
                pool.give(buf)
        """
        assert rules(source) == ["REP201"]

    def test_directive_scans_past_decorators(self):
        assert rules("""
            # flow: transfer
            @wraps(thing)
            def run(pool, shape):
                buf = pool.take(shape)
        """) == []


class TestErrorContainment:
    def test_syntax_error_becomes_rep290(self):
        findings = findings_for("def broken(:\n")
        assert [f.rule for f in findings] == ["REP290"]
        assert "memory/pool.py" in findings[0].where
