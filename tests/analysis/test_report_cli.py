"""Tests of the shared finding report and the ``repro.analysis`` CLI.

The CLI's exit-code contract is what CI relies on: 0 for a clean run,
1 when any analysis reports findings, 2 for usage errors (unreadable
paths, unknown commands).
"""

import pytest

from repro.analysis.cli import main
from repro.analysis.report import Finding, format_findings


class TestFinding:
    def test_str_is_where_rule_message(self):
        f = Finding(rule="REP200", where="memory/pool.py:42",
                    message="'buf' still taken at return")
        assert str(f) == "memory/pool.py:42: REP200 'buf' still taken " \
                         "at return"

    def test_details_do_not_affect_equality(self):
        a = Finding("REP200", "x:1", "m", details={"resource": "buf"})
        b = Finding("REP200", "x:1", "m", details={"resource": "other"})
        assert a == b

    def test_findings_are_frozen(self):
        f = Finding("REP200", "x:1", "m")
        with pytest.raises(AttributeError):
            f.rule = "REP201"


class TestFormatFindings:
    FINDINGS = [Finding("REP201", "a.py:3", "double give"),
                Finding("REP210", "b.py:7", "unguarded write")]

    def test_one_line_per_finding(self):
        out = format_findings(self.FINDINGS)
        assert out.splitlines() == [str(f) for f in self.FINDINGS]

    def test_header_carries_count(self):
        out = format_findings(self.FINDINGS, header="flow")
        assert out.splitlines()[0] == "flow: 2 finding(s)"

    def test_empty_with_header(self):
        assert format_findings([], header="flow") == "flow: 0 finding(s)"

    def test_empty_without_header(self):
        assert format_findings([]) == ""


class TestCliExitCodes:
    def test_flow_clean_tree_exits_zero(self, capsys):
        assert main(["flow"]) == 0
        out = capsys.readouterr().out
        assert "ownership (REP200-203)" in out
        assert "locks     (REP210-211)" in out

    def test_flow_bad_path_is_usage_error(self, capsys):
        assert main(["flow", "/no/such/module.py"]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_flow_findings_exit_nonzero(self, tmp_path, capsys):
        bad = tmp_path / "leaky.py"
        bad.write_text("def run(pool, shape):\n"
                       "    buf = pool.take(shape)\n")
        assert main(["flow", str(bad)]) == 1
        assert "REP200" in capsys.readouterr().out

    def test_flow_explicit_clean_file_exits_zero(self, tmp_path):
        good = tmp_path / "fine.py"
        good.write_text("def run(pool, shape):\n"
                        "    buf = pool.take(shape)\n"
                        "    pool.give(buf)\n")
        assert main(["flow", str(good)]) == 0

    def test_lint_clean_tree_exits_zero(self):
        assert main(["lint"]) == 0

    def test_unknown_command_is_usage_error(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["no-such-command"])
        assert exc.value.code == 2
