"""Unit tests of the wave conflict verifier (synthetic flush streams)."""

import numpy as np

from repro.analysis.effects import (HANDLER_WRITE_SPEC, KERNEL_EFFECTS,
                                    call_accesses)
from repro.analysis.waves import is_wave_parallel, verify_flush
from repro.kernels.dispatch import KERNEL_OPS, ExecContext, KernelCall


def _ctx():
    return ExecContext()


def _potrf(s):
    return KernelCall("potrf_diag", (s,))


def _syrk(tgt, flat):
    return KernelCall("syrk_sub", (tgt, ("scratch", "src"),
                                   np.asarray(flat, dtype=np.int64), -1.0))


class TestPathGate:
    def test_serial_parallelism_never_checked(self):
        pending = [(_potrf(0), 0), (_potrf(0), 0)]  # would be WAVE001
        assert verify_flush(pending, _ctx(), parallelism=1) == []

    def test_missing_wave_forces_serial(self):
        pending = [(_potrf(0), 0), (_potrf(0), None)]
        assert not is_wave_parallel(pending, parallelism=4, batching=True)
        assert verify_flush(pending, _ctx(), parallelism=4) == []

    def test_rhs_ops_force_serial(self):
        pending = [(KernelCall("trsv", (0, 0, 1, True)), 0),
                   (_potrf(0), 0)]
        assert not is_wave_parallel(pending, parallelism=4, batching=True)
        assert verify_flush(pending, _ctx(), parallelism=4) == []

    def test_batching_off_forces_serial(self):
        pending = [(_potrf(0), 0)]
        assert not is_wave_parallel(pending, parallelism=4, batching=False)


class TestImmediatePairs:
    def test_distinct_buffers_clean(self):
        pending = [(_potrf(0), 0), (_potrf(1), 0), (_potrf(2), 1)]
        assert verify_flush(pending, _ctx(), parallelism=4) == []

    def test_same_wave_overlap_is_wave001(self):
        pending = [(_potrf(3), 1), (_potrf(3), 1)]
        findings = verify_flush(pending, _ctx(), parallelism=4)
        assert [f.rule for f in findings] == ["WAVE001"]
        f = findings[0]
        assert f.details["buffer"] == ("diag", 3)
        assert (f.details["task_a"], f.details["task_b"]) == (0, 1)
        assert "wave 1" in f.message

    def test_wave_order_inversion_is_wave002(self):
        # Submitted second but scheduled in an earlier wave.
        pending = [(_potrf(3), 2), (_potrf(3), 1)]
        findings = verify_flush(pending, _ctx(), parallelism=4)
        assert [f.rule for f in findings] == ["WAVE002"]

    def test_consistent_cross_wave_order_clean(self):
        pending = [(_potrf(3), 0), (_potrf(3), 1)]
        assert verify_flush(pending, _ctx(), parallelism=4) == []


class TestDeferredPairs:
    def test_scatter_before_consumer_clean(self):
        # Scatter-add into diag 0 (wave 0), potrf consumes it in wave 1:
        # the queue drains at wave 1's start, matching submission order.
        pending = [(_syrk(("diag", 0), [0, 1]), 0), (_potrf(0), 1)]
        assert verify_flush(pending, _ctx(), parallelism=4) == []

    def test_scatter_sharing_consumer_wave_is_wave003(self):
        # Scatter submitted first but assigned the consumer's own wave:
        # the queue drains only at the start of a strictly later wave, so
        # the add would land after the potrf — against submission order.
        pending = [(_syrk(("diag", 0), [0]), 1), (_potrf(0), 1)]
        findings = verify_flush(pending, _ctx(), parallelism=4)
        assert [f.rule for f in findings] == ["WAVE003"]

    def test_scatter_scheduled_early_is_wave003(self):
        # Submitted after the potrf but scheduled in an earlier wave: the
        # drain preceding wave 1 applies it first, inverting the order.
        pending = [(_potrf(0), 1), (_syrk(("diag", 0), [0]), 0)]
        findings = verify_flush(pending, _ctx(), parallelism=4)
        assert [f.rule for f in findings] == ["WAVE003"]

    def test_disjoint_scatters_clean(self):
        # Deferred-deferred pairs are ordered by the queues themselves.
        pending = [(_syrk(("diag", 0), [0, 1]), 0),
                   (_syrk(("diag", 0), [0, 1]), 0),
                   (_potrf(0), 1)]
        assert verify_flush(pending, _ctx(), parallelism=4) == []

    def test_exact_scatter_indices_used(self):
        # The report pinpoints the scatter's flat indices [5, 7), not the
        # whole buffer: overlap with the potrf write is bytes [40, 56).
        pending = [(_syrk(("diag", 0), [5, 6]), 1), (_potrf(0), 1)]
        findings = verify_flush(pending, _ctx(), parallelism=4)
        assert findings and findings[0].details["elem_range"] == (5, 7)
        assert findings[0].details["byte_range"] == (40, 56)


class TestEffectsRegistry:
    def test_every_kernel_op_has_effects(self):
        assert set(KERNEL_EFFECTS) == set(KERNEL_OPS)

    def test_every_kernel_op_has_write_spec(self):
        assert set(HANDLER_WRITE_SPEC) == set(KERNEL_OPS)

    def test_unknown_op_is_loud(self):
        try:
            call_accesses(KernelCall("warp_speed", ()), _ctx())
        except KeyError as exc:
            assert "KERNEL_EFFECTS" in str(exc)
        else:
            raise AssertionError("unknown op must raise")
