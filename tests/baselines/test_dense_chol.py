"""Tests of the reference dense Cholesky variants (paper Alg. 1, §2.3)."""

import numpy as np
import pytest

from repro.baselines import (
    backward_substitution,
    basic_cholesky,
    dense_solve,
    forward_substitution,
    left_looking_cholesky,
    right_looking_cholesky,
)
from repro.sparse import NotPositiveDefiniteError


def spd(n, seed=0):
    rng = np.random.default_rng(seed)
    g = rng.standard_normal((n, n))
    return g @ g.T + n * np.eye(n)


VARIANTS = [basic_cholesky, left_looking_cholesky, right_looking_cholesky]


@pytest.mark.parametrize("chol", VARIANTS)
class TestVariants:
    def test_matches_numpy(self, chol):
        a = spd(12, seed=1)
        assert np.allclose(chol(a), np.linalg.cholesky(a))

    def test_input_not_modified(self, chol):
        a = spd(6, seed=2)
        backup = a.copy()
        chol(a)
        assert np.array_equal(a, backup)

    def test_raises_on_indefinite(self, chol):
        a = np.array([[1.0, 2.0], [2.0, 1.0]])
        with pytest.raises(NotPositiveDefiniteError):
            chol(a)

    def test_1x1(self, chol):
        assert np.allclose(chol(np.array([[9.0]])), [[3.0]])


class TestVariantsAgree:
    def test_all_three_identical(self):
        a = spd(15, seed=3)
        l1, l2, l3 = (v(a) for v in VARIANTS)
        assert np.allclose(l1, l2)
        assert np.allclose(l2, l3)


class TestSubstitution:
    def test_forward(self, rng):
        l = np.linalg.cholesky(spd(8, seed=4))
        b = rng.standard_normal(8)
        y = forward_substitution(l, b)
        assert np.allclose(l @ y, b)

    def test_backward(self, rng):
        l = np.linalg.cholesky(spd(8, seed=5))
        y = rng.standard_normal(8)
        x = backward_substitution(l, y)
        assert np.allclose(l.T @ x, y)

    def test_dense_solve_end_to_end(self, rng):
        a = spd(10, seed=6)
        b = rng.standard_normal(10)
        x = dense_solve(a, b)
        assert np.allclose(a @ x, b)
