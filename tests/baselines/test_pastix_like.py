"""Tests of the PaStiX-like right-looking baseline."""

import numpy as np
import pytest

from repro import CPU_ONLY, SolverOptions, SymPackSolver
from repro.baselines import PastixLikeSolver, PastixOptions
from repro.sparse import grid_laplacian_2d, random_spd, thermal_like


class TestCorrectness:
    @pytest.mark.parametrize("nranks", [1, 2, 4, 7])
    def test_solves_correctly(self, nranks, rng):
        a = random_spd(35, density=0.15, seed=1)
        b = rng.standard_normal(a.n)
        solver = PastixLikeSolver(a, PastixOptions(nranks=nranks,
                                                   offload=CPU_ONLY))
        solver.factorize()
        x, _ = solver.solve(b)
        assert solver.residual_norm(x, b) < 1e-10

    def test_corner_cases(self, corner_case, rng):
        b = rng.standard_normal(corner_case.n)
        solver = PastixLikeSolver(corner_case, PastixOptions(
            nranks=3, offload=CPU_ONLY))
        solver.factorize()
        x, _ = solver.solve(b)
        assert solver.residual_norm(x, b) < 1e-9

    def test_same_factor_as_sympack(self, lap2d):
        """Both solvers share numerics: identical factor values."""
        sym = SymPackSolver(lap2d, SolverOptions(nranks=4, offload=CPU_ONLY))
        sym.factorize()
        pas = PastixLikeSolver(lap2d, PastixOptions(nranks=4,
                                                    offload=CPU_ONLY))
        pas.factorize()
        l_sym = sym.storage.to_sparse_factor().toarray()
        l_pas = pas.storage.to_sparse_factor().toarray()
        assert np.allclose(l_sym, l_pas, atol=1e-12)

    def test_solve_before_factorize_raises(self, lap2d):
        solver = PastixLikeSolver(lap2d)
        with pytest.raises(RuntimeError):
            solver.solve(np.ones(lap2d.n))


class TestModelledBehaviour:
    def test_sympack_faster_at_scale(self):
        """The paper's headline: symPACK outperforms PaStiX (Section 5.3)."""
        a = grid_laplacian_2d(24, 24)
        b = np.ones(a.n)
        sym = SymPackSolver(a, SolverOptions(nranks=16, ranks_per_node=4))
        fi = sym.factorize()
        pas = PastixLikeSolver(a, PastixOptions(nranks=16, ranks_per_node=4))
        pr = pas.factorize()
        assert fi.simulated_seconds < pr.simulated_seconds

    def test_pastix_solve_degrades_on_irregular(self):
        """Fig. 12: PaStiX solve time grows with ranks on thermal-like."""
        a = thermal_like(n=1500, seed=3)
        b = np.ones(a.n)
        times = []
        for p in (4, 32, 128):
            solver = PastixLikeSolver(a, PastixOptions(nranks=p,
                                                       ranks_per_node=4))
            solver.factorize()
            _, si = solver.solve(b)
            times.append(si.simulated_seconds)
        assert times[-1] > times[0]

    def test_higher_task_overhead_than_sympack(self):
        opts = PastixOptions()
        assert (opts.tuned_machine().task_overhead_s
                > opts.machine.task_overhead_s)
        assert (opts.tuned_machine().send_occupancy_s
                > opts.machine.send_occupancy_s)

    def test_uses_reference_memory_kinds(self, lap2d):
        """PaStiX has no GDR memory kinds: staged transfers only."""
        from repro.pgas import MemoryKindsMode
        solver = PastixLikeSolver(lap2d, PastixOptions(nranks=2))
        world = solver.session._new_world()
        assert world.network.mode is MemoryKindsMode.REFERENCE
