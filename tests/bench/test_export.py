"""Tests of benchmark-result export (CSV/JSON)."""

import csv
import json

import pytest

from repro.bench import run_memory_kinds_bench, run_strong_scaling
from repro.bench.export import (
    export_memory_kinds,
    export_scaling,
    memory_kinds_to_rows,
    scaling_to_rows,
    write_csv,
    write_json,
)
from repro.sparse import grid_laplacian_2d


@pytest.fixture(scope="module")
def scaling_result():
    return run_strong_scaling(grid_laplacian_2d(8, 8), node_counts=(1, 2),
                              ppn_sweep=(1,))


class TestFlattening:
    def test_scaling_rows(self, scaling_result):
        rows = scaling_to_rows(scaling_result)
        assert len(rows) == 4  # 2 solvers x 2 node counts
        assert {r["solver"] for r in rows} == {"symPACK", "PaStiX-like"}
        for r in rows:
            assert r["factor_seconds"] > 0
            assert r["residual"] < 1e-10

    def test_memory_kinds_rows(self):
        result = run_memory_kinds_bench(sizes=(1024, 4096))
        rows = memory_kinds_to_rows(result)
        assert len(rows) == 6  # 3 modes x 2 sizes
        assert all(r["bandwidth_mib_s"] > 0 for r in rows)


class TestWriters:
    def test_csv_roundtrip(self, tmp_path, scaling_result):
        rows = scaling_to_rows(scaling_result)
        path = tmp_path / "out.csv"
        write_csv(rows, path)
        with open(path, newline="") as fh:
            back = list(csv.DictReader(fh))
        assert len(back) == len(rows)
        assert float(back[0]["factor_seconds"]) == rows[0]["factor_seconds"]

    def test_json_roundtrip(self, tmp_path, scaling_result):
        rows = scaling_to_rows(scaling_result)
        path = tmp_path / "out.json"
        write_json(rows, path)
        back = json.loads(path.read_text())
        assert back == json.loads(json.dumps(rows))

    def test_empty_rows_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            write_csv([], tmp_path / "x.csv")


class TestExportHelpers:
    def test_export_scaling_creates_both(self, tmp_path, scaling_result):
        csv_path, json_path = export_scaling(scaling_result, tmp_path)
        assert csv_path.exists() and json_path.exists()
        assert csv_path.stem == json_path.stem

    def test_export_memory_kinds(self, tmp_path):
        result = run_memory_kinds_bench(sizes=(8192,))
        csv_path, json_path = export_memory_kinds(result, tmp_path)
        rows = json.loads(json_path.read_text())
        assert len(rows) == 3

    def test_creates_missing_directory(self, tmp_path, scaling_result):
        target = tmp_path / "deep" / "dir"
        export_scaling(scaling_result, target)
        assert target.is_dir()
