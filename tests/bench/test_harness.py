"""Tests of the strong-scaling harness (small configurations)."""

import pytest

from repro.bench import run_strong_scaling
from repro.sparse import grid_laplacian_2d


@pytest.fixture(scope="module")
def small_result():
    a = grid_laplacian_2d(14, 14)
    return run_strong_scaling(a, node_counts=(1, 2, 4), ppn_sweep=(2,))


class TestHarness:
    def test_point_per_node_count(self, small_result):
        assert small_result.nodes == [1, 2, 4]
        assert len(small_result.sympack.points) == 3
        assert len(small_result.pastix.points) == 3

    def test_residuals_verified(self, small_result):
        for series in (small_result.sympack, small_result.pastix):
            for p in series.points:
                assert p.residual < 1e-10

    def test_sympack_wins(self, small_result):
        """The headline comparison: speedup >= 1 at every node count."""
        for s in small_result.speedups_factor():
            assert s > 1.0
        for s in small_result.speedups_solve():
            assert s > 1.0

    def test_sympack_scales(self, small_result):
        times = small_result.sympack.factor_times()
        assert times[-1] < times[0]

    def test_ranks_recorded(self, small_result):
        assert [p.ranks for p in small_result.sympack.points] == [2, 4, 8]

    def test_ppn_sweep_picks_best(self):
        a = grid_laplacian_2d(10, 10)
        res = run_strong_scaling(a, node_counts=(1,), ppn_sweep=(1, 2, 4))
        assert res.sympack.points[0].ranks_per_node in (1, 2, 4)
