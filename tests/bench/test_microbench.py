"""Tests of the memory-kinds microbenchmark (paper Figure 5)."""

import pytest

from repro.bench import PAYLOAD_SIZES, run_memory_kinds_bench


@pytest.fixture(scope="module")
def result():
    return run_memory_kinds_bench()


class TestFigure5:
    def test_three_series(self, result):
        modes = {p.mode for p in result.points}
        assert modes == {"native", "reference", "mpi"}

    def test_all_sizes_covered(self, result):
        for mode in ("native", "reference", "mpi"):
            series = result.series(mode)
            assert [p.nbytes for p in series] == sorted(PAYLOAD_SIZES)

    def test_native_beats_reference_everywhere(self, result):
        for nbytes in PAYLOAD_SIZES:
            assert result.ratio("native", "reference", nbytes) > 1.0

    def test_mpi_within_20_percent_of_native(self, result):
        """Paper: 'bandwidth gap ... within 20% across the entire range'."""
        for nbytes in PAYLOAD_SIZES:
            r = result.ratio("mpi", "native", nbytes)
            assert 0.8 < r <= 1.01

    def test_gap_shrinks_with_size(self, result):
        small = result.ratio("native", "reference", 4096)
        large = result.ratio("native", "reference", 4 << 20)
        assert small > large > 2.0

    def test_paper_quantified_ratios(self):
        """5.9x at 8 KiB and 2.3x above 1 MiB (paper Section 5.1)."""
        r = run_memory_kinds_bench(sizes=(8192, 2 << 20, 4 << 20))
        assert r.ratio("native", "reference", 8192) == pytest.approx(5.9, rel=0.2)
        assert r.ratio("native", "reference", 4 << 20) == pytest.approx(2.3, rel=0.1)

    def test_native_saturates_wire_speed(self, result):
        top = result.series("native")[-1]
        assert top.bandwidth_mib_s > 0.9 * result.wire_speed_mib_s

    def test_bandwidth_monotone_nondecreasing(self, result):
        for mode in ("native", "reference", "mpi"):
            bws = [p.bandwidth_mib_s for p in result.series(mode)]
            assert all(b2 >= b1 for b1, b2 in zip(bws, bws[1:]))
