"""Tests of the text reporting helpers."""

from repro.bench import (
    format_memory_kinds,
    format_scaling,
    format_table,
    format_table1,
    format_workload_split,
    paper_table1,
    run_memory_kinds_bench,
    run_strong_scaling,
)
from repro.sparse import grid_laplacian_2d


class TestFormatTable:
    def test_alignment(self):
        out = format_table(["a", "bb"], [["1", "2"], ["33", "44"]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert len(set(len(l) for l in lines)) == 1  # rectangular

    def test_empty_rows(self):
        out = format_table(["x"], [])
        assert "x" in out


class TestPaperTables:
    def test_table1_contains_names(self):
        out = format_table1(paper_table1())
        for name in ("Flan_1565", "boneS10", "thermal2"):
            assert name in out

    def test_scaling_format(self):
        res = run_strong_scaling(grid_laplacian_2d(8, 8),
                                 node_counts=(1, 2), ppn_sweep=(1,))
        out_f = format_scaling(res, phase="factor")
        out_s = format_scaling(res, phase="solve")
        assert "Factorization" in out_f and "Solve" in out_s
        assert "speedup" in out_f

    def test_memory_kinds_format(self):
        out = format_memory_kinds(run_memory_kinds_bench(sizes=(8192,)))
        assert "8KiB" in out and "native" in out

    def test_workload_split_format(self):
        out = format_workload_split(
            {"GEMM": {"cpu": 10, "gpu": 2}, "POTRF": {"cpu": 5, "gpu": 0}})
        assert "GEMM" in out and "POTRF" in out
