"""Tests of the benchmark workload registry (paper Table 1 stand-ins)."""

import pytest

from repro.bench import WORKLOADS, get_workload, paper_table1


class TestRegistry:
    def test_three_paper_matrices(self):
        assert set(WORKLOADS) == {"flan", "bone", "thermal"}

    def test_lookup(self):
        assert get_workload("flan").paper_name == "Flan_1565"

    def test_unknown_raises(self):
        with pytest.raises(ValueError):
            get_workload("nd24k")

    def test_paper_characteristics_recorded(self):
        wl = get_workload("thermal")
        assert wl.paper_n == 1_228_045
        assert wl.paper_nnz == 8_580_313


class TestStandIns:
    def test_deterministic_build(self):
        a = get_workload("bone").build()
        b = get_workload("bone").build()
        assert (a.lower != b.lower).nnz == 0

    def test_sparsity_character_preserved(self):
        """nnz/n ordering across matrices must match the paper:
        flan (73) > bone (45) > thermal (7)."""
        density = {}
        for key in WORKLOADS:
            a = get_workload(key).build()
            density[key] = a.nnz_full / a.n
        assert density["flan"] > density["bone"] > density["thermal"]

    def test_thermal_is_sparsest_like_paper(self):
        a = get_workload("thermal").build()
        assert a.nnz_full / a.n < 10

    def test_table1_rows(self):
        rows = paper_table1()
        assert len(rows) == 3
        for row in rows:
            assert row["n"] > 1000  # bench scale, not toy scale
            assert row["nnz"] > row["n"]
