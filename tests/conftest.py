"""Shared fixtures: small deterministic matrices used across the suite."""

import numpy as np
import pytest

from repro.sparse import (
    SymmetricCSC,
    arrow_matrix,
    block_dense_spd,
    grid_laplacian_2d,
    grid_laplacian_3d,
    random_spd,
    tridiagonal_spd,
)


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def lap2d():
    return grid_laplacian_2d(8, 8)


@pytest.fixture
def lap3d():
    return grid_laplacian_3d(5, 5, 5)


@pytest.fixture
def tiny_spd():
    """A hand-checkable 4x4 SPD matrix."""
    a = np.array([
        [4.0, 1.0, 0.0, 1.0],
        [1.0, 5.0, 2.0, 0.0],
        [0.0, 2.0, 6.0, 1.0],
        [1.0, 0.0, 1.0, 7.0],
    ])
    return SymmetricCSC.from_any(a, name="tiny4")


# A corner-case gallery exercised by integration and property tests.
CORNER_CASES = {
    "diagonal": lambda: SymmetricCSC.from_any(np.diag([3.0, 1.0, 2.5, 9.0])),
    "singleton": lambda: SymmetricCSC.from_any(np.array([[2.0]])),
    "tridiag": lambda: tridiagonal_spd(17),
    "arrow": lambda: arrow_matrix(15),
    "blockdense": lambda: block_dense_spd(4, 5),
    "random_sparse": lambda: random_spd(30, density=0.1, seed=3),
    "random_denser": lambda: random_spd(25, density=0.4, seed=4),
    "lap2d_rect": lambda: grid_laplacian_2d(6, 9),
}


@pytest.fixture(params=sorted(CORNER_CASES))
def corner_case(request):
    return CORNER_CASES[request.param]()
