"""Tests of the analytical threshold framework and autotuner (paper §6)."""

import numpy as np
import pytest

from repro import SolverOptions, analytical_policy, analytical_thresholds
from repro.core import DEFAULT_THRESHOLDS, autotune_thresholds
from repro.kernels import OP_GEMM, OP_POTRF, OP_SYRK, OP_TRSM
from repro.machine import aurora, frontier, perlmutter
from repro.sparse import flan_like


class TestAnalyticalThresholds:
    def test_all_ops_covered(self):
        t = analytical_thresholds(perlmutter())
        assert set(t) == {OP_GEMM, OP_SYRK, OP_TRSM, OP_POTRF}
        assert all(v >= 1 for v in t.values())

    def test_gemm_lowest_potrf_highest(self):
        """Arithmetic-intensity ordering: GEMM amortises the GPU best,
        POTRF worst (paper's rationale for per-op thresholds)."""
        t = analytical_thresholds(perlmutter())
        assert t[OP_GEMM] <= t[OP_SYRK] <= t[OP_POTRF]
        assert t[OP_GEMM] <= t[OP_TRSM]

    def test_threshold_is_exact_crossover(self):
        """At the returned threshold GPU wins; one element below it loses."""
        from repro.core.autotune import _flops_for_buffer, _operand_buffers
        m = perlmutter()
        t = analytical_thresholds(m, transfer_discount=0.5)
        for op, thr in t.items():
            if thr in (1, 1 << 30):
                continue
            nbufs = _operand_buffers(op)

            def gpu_cost(e):
                return (m.gpu_time(_flops_for_buffer(op, e))
                        + 0.5 * nbufs * m.pcie_time(e * 8))

            def cpu_cost(e):
                return m.cpu_time(_flops_for_buffer(op, e))

            assert gpu_cost(thr) < cpu_cost(thr)
            assert gpu_cost(thr - 1) >= cpu_cost(thr - 1)

    def test_hardware_agnostic(self):
        """Different machines -> different thresholds (the 'framework'
        aspect): a slower-launch GPU needs bigger buffers."""
        fast = perlmutter()
        slow_launch = perlmutter().with_overrides(kernel_launch_s=1e-4)
        t_fast = analytical_thresholds(fast)
        t_slow = analytical_thresholds(slow_launch)
        for op in t_fast:
            assert t_slow[op] >= t_fast[op]

    def test_gpu_never_profitable_edge(self):
        """A machine whose GPU is slower than its CPU never offloads."""
        m = perlmutter().with_overrides(gpu_flops=1e9)  # slower than CPU
        t = analytical_thresholds(m)
        assert all(v == 1 << 30 for v in t.values())

    def test_vendor_machines_produce_thresholds(self):
        for machine in (frontier(), aurora()):
            t = analytical_thresholds(machine)
            assert all(1 <= v < 1 << 30 for v in t.values())

    def test_same_order_of_magnitude_as_tuned_defaults(self):
        """The analytical model must land in the regime of the
        brute-force-tuned defaults (within ~30x both ways)."""
        t = analytical_thresholds(perlmutter())
        for op, default in DEFAULT_THRESHOLDS.items():
            assert default / 30 < t[op] < default * 30

    def test_invalid_discount_rejected(self):
        with pytest.raises(ValueError):
            analytical_thresholds(perlmutter(), transfer_discount=1.5)

    def test_policy_wrapper(self):
        p = analytical_policy(perlmutter())
        assert p.enabled
        assert p.gpu_block_threshold == p.thresholds[OP_POTRF]


class TestAutotune:
    def test_sweep_returns_best(self):
        a = flan_like(scale=8)
        result = autotune_thresholds(
            a,
            lambda policy: SolverOptions(nranks=2, ranks_per_node=2,
                                         offload=policy),
            scales=(0.25, 1.0, 4.0),
        )
        assert len(result.sweep) == 3
        assert result.best_time == min(t for _, t in result.sweep)
        assert result.best_scale in (0.25, 1.0, 4.0)
        assert "best scale" in result.summary()

    def test_best_policy_usable(self):
        from repro import SymPackSolver
        a = flan_like(scale=8)
        result = autotune_thresholds(
            a, lambda p: SolverOptions(nranks=2, offload=p),
            scales=(1.0,))
        solver = SymPackSolver(a, SolverOptions(nranks=2,
                                                offload=result.best_policy))
        solver.factorize()
        b = np.ones(a.n)
        x, _ = solver.solve(b)
        assert solver.residual_norm(x, b) < 1e-10
