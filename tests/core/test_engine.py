"""Unit tests for the fan-out DES engine (LTQ/RTQ + signal/get protocol)."""

import numpy as np
import pytest

from repro.core import (
    CPU_ONLY,
    FactorStorage,
    FanOutEngine,
    OffloadPolicy,
    TaskGraph,
    TaskKind,
    build_factor_graph,
    make_map,
)
from repro.machine import perlmutter
from repro.pgas import MemoryKindsMode, OomFallback, World
from repro.sparse import grid_laplacian_2d, random_spd
from repro.symbolic import analyze


def run_factor(a, nranks=4, policy=CPU_ONLY, device_capacity=None,
               mode=MemoryKindsMode.NATIVE, scheduling="fifo",
               ranks_per_node=4):
    an = analyze(a)
    st = FactorStorage(an)
    world = World(nranks=nranks, machine=perlmutter(),
                  ranks_per_node=min(ranks_per_node, nranks), mode=mode,
                  device_capacity=device_capacity)
    g = build_factor_graph(an, st, make_map(nranks), policy)
    engine = FanOutEngine(world, g, policy, scheduling=scheduling)
    result = engine.run()
    return an, st, world, result


class TestCorrectness:
    @pytest.mark.parametrize("nranks", [1, 2, 3, 4, 7, 16])
    def test_factor_correct_any_rank_count(self, nranks):
        a = random_spd(25, density=0.2, seed=1)
        an, st, _, _ = run_factor(a, nranks=nranks)
        l = np.tril(st.to_sparse_factor().toarray())
        expected = np.linalg.cholesky(an.a_perm.to_dense())
        assert np.allclose(l, expected, atol=1e-10)

    def test_all_tasks_executed(self, lap2d):
        _, _, _, result = run_factor(lap2d)
        assert result.tasks_total == result.trace.tasks_executed

    def test_corner_cases(self, corner_case):
        an, st, _, _ = run_factor(corner_case, nranks=3)
        l = np.tril(st.to_sparse_factor().toarray())
        expected = np.linalg.cholesky(an.a_perm.to_dense())
        assert np.allclose(l, expected, atol=1e-9)


class TestDeterminism:
    def test_same_makespan_every_run(self, lap2d):
        times = [run_factor(lap2d)[3].makespan for _ in range(3)]
        assert times[0] == times[1] == times[2]

    def test_priority_scheduling_also_correct(self):
        a = random_spd(20, density=0.2, seed=5)
        an, st, _, _ = run_factor(a, scheduling="priority")
        l = np.tril(st.to_sparse_factor().toarray())
        assert np.allclose(l, np.linalg.cholesky(an.a_perm.to_dense()),
                           atol=1e-10)

    def test_unknown_scheduling_rejected(self, lap2d):
        an = analyze(lap2d)
        st = FactorStorage(an)
        world = World(2, perlmutter())
        g = build_factor_graph(an, st, make_map(2), CPU_ONLY)
        with pytest.raises(ValueError):
            FanOutEngine(world, g, CPU_ONLY, scheduling="random")


class TestTimingSanity:
    def test_more_ranks_not_slower(self):
        """Strong scaling: 16 ranks must beat 1 rank on a real problem."""
        a = grid_laplacian_2d(16, 16)
        t1 = run_factor(a, nranks=1, ranks_per_node=1)[3].makespan
        t16 = run_factor(a, nranks=16)[3].makespan
        assert t16 < t1

    def test_single_rank_time_equals_work_sum(self):
        """With one rank there is no communication: makespan ~= busy time."""
        a = grid_laplacian_2d(8, 8)
        _, _, world, result = run_factor(a, nranks=1, ranks_per_node=1)
        assert result.makespan == pytest.approx(result.rank_busy[0], rel=1e-9)

    def test_communication_counted_multirank(self, lap2d):
        _, _, world, _ = run_factor(lap2d, nranks=4)
        assert world.stats.rpcs_sent > 0
        assert world.stats.gets_issued == world.stats.rpcs_sent
        assert world.stats.bytes_get > 0

    def test_single_rank_no_comm(self, lap2d):
        _, _, world, _ = run_factor(lap2d, nranks=1)
        assert world.stats.rpcs_sent == 0
        assert world.stats.bytes_get == 0

    def test_load_imbalance_reported(self, lap2d):
        _, _, _, result = run_factor(lap2d, nranks=4)
        assert result.load_imbalance >= 1.0


class TestGpuExecution:
    def test_gpu_ops_appear_with_policy(self):
        a = grid_laplacian_2d(20, 20)
        policy = OffloadPolicy().with_thresholds(
            GEMM=64, SYRK=64, TRSM=64, POTRF=64)
        _, _, _, result = run_factor(a, nranks=2, policy=policy,
                                     device_capacity=1 << 28)
        assert result.trace.ops.total_calls("gpu") > 0

    def test_gpu_offload_faster_when_compute_bound(self):
        # Needs large dense supernodes for the offload to pay off: the
        # flan-like 27-point stencil has ~200-wide separators.
        from repro.sparse import flan_like
        a = flan_like(scale=12)
        t_cpu = run_factor(a, nranks=1, ranks_per_node=1)[3].makespan
        policy = OffloadPolicy()  # default thresholds
        result = run_factor(a, nranks=1, ranks_per_node=1, policy=policy,
                            device_capacity=1 << 30)[3]
        assert result.trace.ops.total_calls("gpu") > 0
        assert result.makespan < t_cpu

    def test_oom_falls_back_to_cpu(self):
        a = grid_laplacian_2d(14, 14)
        policy = OffloadPolicy().with_thresholds(
            GEMM=16, SYRK=16, TRSM=16, POTRF=16)
        _, _, _, result = run_factor(a, nranks=2, policy=policy,
                                     device_capacity=2048)  # tiny device
        assert result.trace.gpu_fallbacks > 0
        # And the factorization still completed.
        assert result.tasks_total == result.trace.tasks_executed

    def test_oom_raise_option(self):
        a = grid_laplacian_2d(14, 14)
        policy = OffloadPolicy(oom_fallback=OomFallback.RAISE).with_thresholds(
            GEMM=16, SYRK=16, TRSM=16, POTRF=16)
        from repro.pgas import DeviceOutOfMemory
        with pytest.raises(DeviceOutOfMemory):
            run_factor(a, nranks=2, policy=policy, device_capacity=2048)

    def test_h2d_bytes_tracked(self):
        a = grid_laplacian_2d(18, 18)
        policy = OffloadPolicy().with_thresholds(
            GEMM=256, SYRK=256, TRSM=256, POTRF=256)
        _, _, _, result = run_factor(a, nranks=2, policy=policy,
                                     device_capacity=1 << 28)
        assert result.trace.h2d_bytes > 0


class TestProtocolFidelity:
    def test_remote_rpc_then_get_pattern(self, lap2d):
        """Every remote dependency is satisfied via RPC + get (Fig. 4)."""
        _, _, world, _ = run_factor(lap2d, nranks=4)
        assert world.stats.gets_issued == world.stats.rpcs_sent

    def test_deadlock_detection(self):
        """An inconsistent graph (dep never satisfied) raises, not hangs."""
        g = TaskGraph()
        t = g.new_task(kind=TaskKind.DIAG, rank=0, op="POTRF", flops=1.0,
                       buffer_elems=1, operand_bytes=8)
        t.deps = 1  # no producer will ever satisfy this
        world = World(1, perlmutter())
        engine = FanOutEngine.__new__(FanOutEngine)
        # Bypass validate() (which would catch it statically) to exercise
        # the runtime guard.
        engine.world = world
        engine.graph = g
        engine.policy = CPU_ONLY
        engine.scheduling = "fifo"
        from repro.core.tracing import ExecutionTrace
        engine.trace = ExecutionTrace()
        engine._remaining = [1]
        from collections import deque
        engine._rtq_fifo = [deque()]
        engine._rtq_heap = [[]]
        engine._busy = [False]
        engine._notifications = [[]]
        engine._device_resident = [set()]
        engine._executed = [False]
        engine._done_count = 0
        engine._checkpointer = None
        with pytest.raises(RuntimeError, match="unexecuted"):
            engine.run()
