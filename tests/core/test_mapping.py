"""Unit tests for block-to-process mappings."""

import numpy as np
import pytest

from repro.core import block_cyclic_2d, column_cyclic_1d, make_map, row_cyclic_1d


class TestGrid:
    @pytest.mark.parametrize("p", [1, 2, 3, 4, 6, 8, 12, 16, 64, 100, 256])
    def test_grid_covers_all_ranks(self, p):
        m = block_cyclic_2d(p)
        assert m.pr * m.pc == p
        hits = {m(i, j) for i in range(2 * p) for j in range(2 * p)}
        assert hits == set(range(p))

    def test_near_square(self):
        m = block_cyclic_2d(16)
        assert (m.pr, m.pc) == (4, 4)
        m = block_cyclic_2d(12)
        assert (m.pr, m.pc) == (3, 4)

    def test_prime_degenerates_to_1d(self):
        m = block_cyclic_2d(7)
        assert {m.pr, m.pc} == {1, 7}


class TestSchemes:
    def test_2d_distributes_rows_and_cols(self):
        m = block_cyclic_2d(4)  # 2x2 grid
        assert m(0, 0) != m(1, 0)  # row matters
        assert m(0, 0) != m(0, 1)  # column matters

    def test_1d_col_ignores_rows(self):
        m = column_cyclic_1d(4)
        assert all(m(i, 2) == m(0, 2) for i in range(10))

    def test_1d_row_ignores_cols(self):
        m = row_cyclic_1d(4)
        assert all(m(3, j) == m(3, 0) for j in range(10))

    def test_factory(self):
        assert make_map(4, "2d").scheme == "2d"
        assert make_map(4, "1d-col").scheme == "1d-col"
        assert make_map(4, "1d-row").scheme == "1d-row"
        with pytest.raises(ValueError):
            make_map(4, "hilbert")

    def test_single_rank_everything_local(self):
        m = make_map(1)
        assert m(5, 3) == 0


class TestBalance:
    def test_2d_balanced_on_dense_block_grid(self):
        """Every rank gets within 2x of the mean over a dense block grid."""
        p = 16
        m = block_cyclic_2d(p)
        counts = np.zeros(p, int)
        n = 32
        for i in range(n):
            for j in range(i + 1):
                counts[m(i, j)] += 1
        assert counts.max() <= 2 * counts.mean()
