"""Protocol tests of the memory-kinds data path (paper Section 4.2).

Verifies the special handling of large factorized diagonal blocks: under
native memory kinds they are marked "GPU blocks" and copied directly into
remote *device* memory, skipping the host bounce buffer; under the
reference implementation the same bytes are staged.
"""

import numpy as np

from repro import MemoryKindsMode, OffloadPolicy, SolverOptions, SymPackSolver
from repro.sparse import flan_like


def run(mode, gpu_block_threshold=256):
    a = flan_like(scale=10)
    policy = OffloadPolicy(
        gpu_block_threshold=gpu_block_threshold,
    ).with_thresholds(GEMM=256, SYRK=256, TRSM=256, POTRF=256)
    solver = SymPackSolver(a, SolverOptions(
        nranks=8, ranks_per_node=4,  # 2 nodes -> inter-node transfers exist
        memory_kinds=mode, offload=policy))
    info = solver.factorize()
    b = np.ones(a.n)
    x, _ = solver.solve(b)
    assert solver.residual_norm(x, b) < 1e-10
    return info


class TestGpuBlockPath:
    def test_native_moves_bytes_device_direct(self):
        info = run(MemoryKindsMode.NATIVE)
        assert info.comm.bytes_device_direct > 0
        assert info.comm.bytes_staged == 0

    def test_reference_stages_instead(self):
        info = run(MemoryKindsMode.REFERENCE)
        assert info.comm.bytes_device_direct == 0
        # Device-bound traffic still exists; it just goes through host.
        assert info.comm.bytes_staged > 0

    def test_huge_threshold_disables_gpu_blocks(self):
        """With no block large enough to qualify, everything lands in
        host memory even under native memory kinds."""
        info = run(MemoryKindsMode.NATIVE, gpu_block_threshold=10**9)
        assert info.comm.bytes_device_direct == 0

    def test_factor_identical_across_modes(self):
        """The data path changes timing and routing, never numerics."""
        times = {}
        for mode in (MemoryKindsMode.NATIVE, MemoryKindsMode.REFERENCE):
            info = run(mode)
            times[mode] = info.simulated_seconds
        assert times[MemoryKindsMode.NATIVE] <= times[
            MemoryKindsMode.REFERENCE] * 1.001
