"""Unit tests for the GPU offload policy."""

from repro.core import CPU_ONLY, DEFAULT_THRESHOLDS, OffloadPolicy
from repro.kernels import OP_GEMM, OP_POTRF, OP_SYRK, OP_TRSM
from repro.pgas import OomFallback


class TestThresholds:
    def test_large_buffers_offloaded(self):
        p = OffloadPolicy()
        for op in (OP_GEMM, OP_SYRK, OP_TRSM, OP_POTRF):
            assert p.wants_gpu(op, 10**7)

    def test_small_buffers_stay_on_cpu(self):
        p = OffloadPolicy()
        for op in (OP_GEMM, OP_SYRK, OP_TRSM, OP_POTRF):
            assert not p.wants_gpu(op, 16)

    def test_per_op_thresholds_distinct(self):
        """Each op has its own threshold (different arithmetic intensity —
        paper Section 4.2)."""
        assert len(set(DEFAULT_THRESHOLDS.values())) == 4
        assert DEFAULT_THRESHOLDS[OP_GEMM] < DEFAULT_THRESHOLDS[OP_POTRF]

    def test_boundary_inclusive(self):
        p = OffloadPolicy()
        t = DEFAULT_THRESHOLDS[OP_GEMM]
        assert p.wants_gpu(OP_GEMM, t)
        assert not p.wants_gpu(OP_GEMM, t - 1)

    def test_unknown_op_stays_cpu(self):
        assert not OffloadPolicy().wants_gpu("FFT", 10**9)


class TestUserOverrides:
    def test_with_thresholds(self):
        p = OffloadPolicy().with_thresholds(GEMM=10)
        assert p.wants_gpu(OP_GEMM, 10)
        # Other ops untouched.
        assert p.thresholds[OP_SYRK] == DEFAULT_THRESHOLDS[OP_SYRK]

    def test_original_unchanged(self):
        base = OffloadPolicy()
        base.with_thresholds(GEMM=10)
        assert base.thresholds[OP_GEMM] == DEFAULT_THRESHOLDS[OP_GEMM]


class TestDisabled:
    def test_cpu_only_never_offloads(self):
        assert not CPU_ONLY.wants_gpu(OP_GEMM, 10**9)
        assert not CPU_ONLY.is_gpu_block(10**9)


class TestGpuBlocks:
    def test_large_diag_blocks_marked(self):
        p = OffloadPolicy()
        assert p.is_gpu_block(p.gpu_block_threshold)
        assert not p.is_gpu_block(p.gpu_block_threshold - 1)


class TestFallback:
    def test_default_is_cpu(self):
        assert OffloadPolicy().oom_fallback is OomFallback.CPU

    def test_raise_option(self):
        p = OffloadPolicy(oom_fallback=OomFallback.RAISE)
        assert p.oom_fallback is OomFallback.RAISE
