"""Tests of iterative refinement."""

import numpy as np
import pytest

from repro import CPU_ONLY, SolverOptions, SymPackSolver, refine_solution
from repro.sparse import SymmetricCSC, grid_laplacian_2d


@pytest.fixture
def ill_conditioned_solver():
    """SPD system with condition number ~1e10."""
    n = 30
    rng = np.random.default_rng(5)
    q, _ = np.linalg.qr(rng.standard_normal((n, n)))
    d = np.logspace(0, 10, n)
    a = q @ np.diag(d) @ q.T
    a = (a + a.T) / 2
    solver = SymPackSolver(SymmetricCSC.from_any(a),
                           SolverOptions(nranks=2, offload=CPU_ONLY))
    solver.factorize()
    return solver


class TestRefinement:
    def test_improves_or_maintains_residual(self, ill_conditioned_solver, rng):
        solver = ill_conditioned_solver
        b = rng.standard_normal(30)
        x0, _ = solver.solve(b)
        r0 = solver.residual_norm(x0, b)
        result = refine_solution(solver, b, x0=x0, max_iters=4)
        # The returned iterate is the best seen: never worse than x0.
        assert min(result.residuals) <= r0 * (1 + 1e-12)
        assert solver.residual_norm(result.x, b) <= r0 * (1 + 1e-12)

    def test_converges_on_well_conditioned(self, rng):
        a = grid_laplacian_2d(10, 10)
        solver = SymPackSolver(a, SolverOptions(offload=CPU_ONLY))
        solver.factorize()
        b = rng.standard_normal(a.n)
        result = refine_solution(solver, b, rtol=1e-13)
        assert result.converged
        assert result.residuals[-1] < 1e-13

    def test_initial_solve_when_no_x0(self, rng):
        a = grid_laplacian_2d(8, 8)
        solver = SymPackSolver(a, SolverOptions(offload=CPU_ONLY))
        solver.factorize()
        b = rng.standard_normal(a.n)
        result = refine_solution(solver, b)
        assert result.simulated_seconds > 0
        assert solver.residual_norm(result.x, b) < 1e-12

    def test_residual_history_monotone_until_stall(self, ill_conditioned_solver, rng):
        b = rng.standard_normal(30)
        result = refine_solution(ill_conditioned_solver, b, max_iters=5,
                                 rtol=0.0)
        # Up to the stall point, each step must not increase the residual
        # by more than the stall factor.
        for r1, r2 in zip(result.residuals, result.residuals[1:-1]):
            assert r2 <= r1

    def test_iteration_budget_respected(self, ill_conditioned_solver, rng):
        b = rng.standard_normal(30)
        result = refine_solution(ill_conditioned_solver, b, max_iters=2,
                                 rtol=0.0)
        assert result.iterations <= 2
