"""Tests of selected inversion (Takahashi equations, PEXSI application)."""

import numpy as np
import pytest

from repro import CPU_ONLY, SolverOptions, SymPackSolver
from repro.core.selinv import selected_inversion
from repro.sparse import grid_laplacian_2d, random_spd, tridiagonal_spd
from repro.variants import MultifrontalOptions, MultifrontalSolver


def factorize(a, nranks=2):
    solver = SymPackSolver(a, SolverOptions(nranks=nranks, offload=CPU_ONLY))
    solver.factorize()
    return solver


class TestDiagonal:
    def test_matches_dense_inverse(self, lap2d):
        solver = factorize(lap2d)
        sel = selected_inversion(solver)
        expected = np.diag(np.linalg.inv(lap2d.to_dense()))
        assert np.allclose(sel.diag_inverse(), expected, atol=1e-10)

    @pytest.mark.parametrize("seed", range(3))
    def test_random_matrices(self, seed):
        a = random_spd(25, density=0.2, seed=seed)
        sel = selected_inversion(factorize(a))
        expected = np.diag(np.linalg.inv(a.to_dense()))
        assert np.allclose(sel.diag_inverse(), expected, atol=1e-10)

    def test_corner_cases(self, corner_case):
        sel = selected_inversion(factorize(corner_case))
        expected = np.diag(np.linalg.inv(corner_case.to_dense()))
        assert np.allclose(sel.diag_inverse(), expected, atol=1e-8)

    def test_tridiagonal(self):
        a = tridiagonal_spd(15)
        sel = selected_inversion(factorize(a))
        expected = np.diag(np.linalg.inv(a.to_dense()))
        assert np.allclose(sel.diag_inverse(), expected, atol=1e-12)


class TestPatternEntries:
    def test_off_diagonal_entries_correct(self):
        a = random_spd(20, density=0.25, seed=5)
        solver = factorize(a)
        sel = selected_inversion(solver)
        z_dense = np.linalg.inv(a.to_dense())
        # Every original nonzero of A is on the factor pattern.
        low = a.lower.tocoo()
        for i, j in zip(low.row, low.col):
            assert sel.entry(int(i), int(j)) == pytest.approx(
                z_dense[i, j], abs=1e-10)

    def test_symmetric_lookup(self, lap2d):
        sel = selected_inversion(factorize(lap2d))
        low = lap2d.lower.tocoo()
        i, j = int(low.row[1]), int(low.col[1])
        assert sel.entry(i, j) == sel.entry(j, i)

    def test_outside_pattern_rejected(self):
        a = tridiagonal_spd(20)
        sel = selected_inversion(factorize(a, nranks=1))
        # (0, 19) is far outside a tridiagonal factor's pattern.
        with pytest.raises(KeyError, match="pattern"):
            sel.entry(0, 19)


class TestSolverFamilies:
    def test_works_on_multifrontal_factor(self):
        a = grid_laplacian_2d(7, 7)
        solver = MultifrontalSolver(a, MultifrontalOptions(nranks=2))
        solver.factorize()
        sel = selected_inversion(solver)
        expected = np.diag(np.linalg.inv(a.to_dense()))
        assert np.allclose(sel.diag_inverse(), expected, atol=1e-10)

    def test_unfactorized_rejected(self, lap2d):
        solver = SymPackSolver(lap2d, SolverOptions(offload=CPU_ONLY))
        with pytest.raises(RuntimeError, match="factorize"):
            selected_inversion(solver)


class TestPhysics:
    def test_trace_of_inverse_via_selinv(self):
        """trace(A^{-1}) — the PEXSI-style quantity — from the selected
        inverse, without ever forming A^{-1}."""
        a = grid_laplacian_2d(9, 9)
        sel = selected_inversion(factorize(a))
        expected = np.trace(np.linalg.inv(a.to_dense()))
        assert sel.diag_inverse().sum() == pytest.approx(expected, rel=1e-10)
