"""Tests of factor save/load."""

import numpy as np
import pytest

from repro import CPU_ONLY, SolverOptions, SymPackSolver
from repro.core.serialization import load_factor, save_factor
from repro.sparse import grid_laplacian_2d, random_spd
from repro.variants import MultifrontalOptions, MultifrontalSolver


@pytest.fixture
def factored(lap2d):
    solver = SymPackSolver(lap2d, SolverOptions(nranks=2, offload=CPU_ONLY))
    solver.factorize()
    return solver


class TestRoundTrip:
    def test_solve_after_reload(self, factored, tmp_path, rng):
        path = tmp_path / "factor.npz"
        save_factor(factored, path)
        loaded = load_factor(path)
        b = rng.standard_normal(loaded.n)
        x_loaded = loaded.solve(b)
        x_live, _ = factored.solve(b)
        assert np.allclose(x_loaded, x_live, atol=1e-10)

    def test_matrix_rhs(self, factored, tmp_path, rng):
        path = tmp_path / "factor.npz"
        save_factor(factored, path)
        loaded = load_factor(path)
        b = rng.standard_normal((loaded.n, 3))
        x = loaded.solve(b)
        assert x.shape == b.shape

    def test_provenance_name(self, factored, tmp_path):
        path = tmp_path / "factor.npz"
        save_factor(factored, path)
        assert load_factor(path).matrix_name == factored.a.name

    def test_pattern_key_provenance(self, factored, tmp_path):
        """The saved factor records which sparsity structure produced it."""
        from repro.service import pattern_key

        path = tmp_path / "factor.npz"
        save_factor(factored, path)
        assert load_factor(path).pattern_key == pattern_key(factored.a)

    def test_logdet_survives_round_trip(self, factored, tmp_path):
        path = tmp_path / "factor.npz"
        save_factor(factored, path)
        loaded = load_factor(path)
        sign, expected = np.linalg.slogdet(factored.a.to_dense())
        assert sign == 1.0
        assert loaded.logdet() == pytest.approx(expected, rel=1e-10)

    def test_factor_residual_without_matrix(self, factored, tmp_path, rng):
        """resolve-style verification: residual against the stored factor."""
        path = tmp_path / "factor.npz"
        save_factor(factored, path)
        loaded = load_factor(path)
        b = rng.standard_normal(loaded.n)
        x = loaded.solve(b)
        assert loaded.factor_residual(x, b) < 1e-10
        assert loaded.factor_residual(x + 1.0, b) > 1e-6

    def test_works_for_multifrontal(self, tmp_path, rng):
        a = random_spd(25, density=0.2, seed=2)
        solver = MultifrontalSolver(a, MultifrontalOptions(nranks=2))
        solver.factorize()
        path = tmp_path / "mf.npz"
        save_factor(solver, path)
        b = rng.standard_normal(a.n)
        x = load_factor(path).solve(b)
        assert np.linalg.norm(a.full() @ x - b) < 1e-8


class TestLogdet:
    def test_matches_dense(self, tmp_path):
        a = grid_laplacian_2d(6, 6)
        solver = SymPackSolver(a, SolverOptions(offload=CPU_ONLY))
        solver.factorize()
        path = tmp_path / "f.npz"
        save_factor(solver, path)
        loaded = load_factor(path)
        sign, expected = np.linalg.slogdet(a.to_dense())
        assert sign == 1.0
        assert loaded.logdet() == pytest.approx(expected, rel=1e-10)


class TestGuards:
    def test_unfactorized_rejected(self, lap2d, tmp_path):
        solver = SymPackSolver(lap2d, SolverOptions(offload=CPU_ONLY))
        with pytest.raises(RuntimeError, match="factorize"):
            save_factor(solver, tmp_path / "x.npz")

    def test_version_check(self, factored, tmp_path):
        path = tmp_path / "factor.npz"
        save_factor(factored, path)
        import numpy as np_mod
        with np_mod.load(path) as archive:
            contents = {k: archive[k] for k in archive.files}
        contents["version"] = np_mod.int64(99)
        np_mod.savez(path, **contents)
        with pytest.raises(ValueError, match="version"):
            load_factor(path)
