"""Unit tests for the execution-session layer and graph re-runnability."""

import numpy as np
import pytest

from repro import CPU_ONLY, SolverOptions, SymPackSolver
from repro.core import ExecutionSession, Scheduling
from repro.core.base import CommonOptions
from repro.machine import perlmutter
from repro.pgas import MemoryKindsMode
from repro.sparse import grid_laplacian_2d
from repro.variants import MultifrontalOptions, MultifrontalSolver


class TestSessionConstruction:
    def test_from_options_mirrors_fields(self):
        opts = CommonOptions(nranks=6, ranks_per_node=3,
                             memory_kinds=MemoryKindsMode.REFERENCE,
                             scheduling="priority")
        sess = ExecutionSession.from_options(opts)
        assert sess.nranks == 6
        assert sess.ranks_per_node == 3
        assert sess.memory_kinds is MemoryKindsMode.REFERENCE
        assert sess.scheduling is Scheduling.PRIORITY
        assert sess.machine is opts.machine

    def test_machine_override(self):
        opts = CommonOptions(nranks=2)
        tuned = perlmutter().with_overrides(task_overhead_s=1.0)
        sess = ExecutionSession.from_options(opts, machine=tuned)
        assert sess.machine is tuned

    def test_invalid_scheduling_rejected(self):
        with pytest.raises(ValueError):
            ExecutionSession(2, perlmutter(), scheduling="random")

    def test_new_world_matches_session(self):
        sess = ExecutionSession(4, perlmutter(), ranks_per_node=2)
        world = sess._new_world()
        assert world.nranks == 4
        # Each run() gets a fresh world; nothing leaks between runs.
        assert sess._new_world() is not world


class TestSessionAccumulation:
    def test_comm_and_trace_accumulate_across_runs(self):
        """Factorize + solve share one counter set (paper Fig. 6)."""
        a = grid_laplacian_2d(10, 10)
        solver = SymPackSolver(a, SolverOptions(nranks=4, offload=CPU_ONLY))
        fi = solver.factorize()
        factor_tasks = solver.trace.tasks_executed
        assert fi.comm.rpcs_sent > 0
        _, si = solver.solve(np.ones(a.n))
        # The session trace keeps accumulating through the solve graphs.
        assert solver.trace.tasks_executed > factor_tasks
        assert solver.session.runs == 3  # factor + forward + backward
        total = solver.session.comm
        assert total.rpcs_sent == fi.comm.rpcs_sent + si.comm.rpcs_sent

    def test_run_result_load_imbalance(self):
        a = grid_laplacian_2d(10, 10)
        solver = SymPackSolver(a, SolverOptions(nranks=4, offload=CPU_ONLY))
        fi = solver.factorize()
        assert max(fi.rank_busy) > 0
        assert len(fi.rank_busy) == 4


class TestGraphReuse:
    """The PEXSI pattern: factorize() twice replays the same graph."""

    def test_factor_graph_object_reused(self):
        a = grid_laplacian_2d(10, 10)
        solver = SymPackSolver(a, SolverOptions(nranks=4, offload=CPU_ONLY))
        solver.factorize()
        first = solver._factor_graph
        solver.factorize()
        assert solver._factor_graph is first

    def test_refactorize_identical_factor_and_timing(self):
        a = grid_laplacian_2d(12, 12)
        solver = SymPackSolver(a, SolverOptions(nranks=4, offload=CPU_ONLY))
        f1 = solver.factorize()
        l1 = solver.storage.to_sparse_factor().toarray().copy()
        f2 = solver.factorize()
        l2 = solver.storage.to_sparse_factor().toarray()
        assert np.array_equal(l1, l2)
        assert f1.simulated_seconds == f2.simulated_seconds
        assert f1.tasks == f2.tasks

    def test_solve_graphs_cached_per_nrhs(self):
        a = grid_laplacian_2d(10, 10)
        solver = SymPackSolver(a, SolverOptions(nranks=4, offload=CPU_ONLY))
        solver.factorize()
        b1 = np.ones(a.n)
        x1, s1 = solver.solve(b1)
        graphs_after_first = dict(solver._solve_graphs)
        x2, s2 = solver.solve(b1)
        assert solver._solve_graphs[1][0] is graphs_after_first[1][0]
        assert np.array_equal(x1, x2)
        assert s1.simulated_seconds == s2.simulated_seconds
        # A different rhs width builds (and caches) a new pair of graphs.
        solver.solve(np.ones((a.n, 3)))
        assert set(solver._solve_graphs) == {1, 3}

    def test_refactorize_after_value_change_is_exact(self):
        """Same structure, new values: the replayed graph factors them."""
        a = grid_laplacian_2d(10, 10)
        solver = SymPackSolver(a, SolverOptions(nranks=2, offload=CPU_ONLY))
        solver.factorize()
        x1, _ = solver.solve(np.ones(a.n))
        # Second factorization of the same matrix must reproduce the run.
        solver.factorize()
        x2, _ = solver.solve(np.ones(a.n))
        assert np.array_equal(x1, x2)
        assert solver.residual_norm(x2, np.ones(a.n)) < 1e-10

    def test_multifrontal_refactorize(self):
        """Transient contribution blocks must not leak across runs."""
        a = grid_laplacian_2d(10, 10)
        solver = MultifrontalSolver(a, MultifrontalOptions(nranks=4))
        f1 = solver.factorize()
        l1 = solver.storage.to_sparse_factor().toarray().copy()
        f2 = solver.factorize()
        assert np.array_equal(l1, solver.storage.to_sparse_factor().toarray())
        assert f1.simulated_seconds == f2.simulated_seconds
        assert not solver._factor_graph.context.transient
