"""Tests of the public SymPackSolver API."""

import numpy as np
import pytest

from repro import CPU_ONLY, MemoryKindsMode, OffloadPolicy, SolverOptions, SymPackSolver, solve_spd
from repro.baselines import reference_solve
from repro.sparse import SymmetricCSC, grid_laplacian_2d, random_spd


class TestSolveCorrectness:
    def test_matches_scipy(self, lap2d, rng):
        b = rng.standard_normal(lap2d.n)
        x = solve_spd(lap2d, b, SolverOptions(nranks=4, offload=CPU_ONLY))
        assert np.allclose(x, reference_solve(lap2d, b), atol=1e-8)

    def test_residual_small_all_corner_cases(self, corner_case, rng):
        b = rng.standard_normal(corner_case.n)
        solver = SymPackSolver(corner_case, SolverOptions(nranks=3,
                                                          offload=CPU_ONLY))
        solver.factorize()
        x, _ = solver.solve(b)
        assert solver.residual_norm(x, b) < 1e-10

    def test_multiple_rhs(self, lap2d, rng):
        b = rng.standard_normal((lap2d.n, 3))
        solver = SymPackSolver(lap2d, SolverOptions(nranks=2, offload=CPU_ONLY))
        solver.factorize()
        x, _ = solver.solve(b)
        assert x.shape == b.shape
        assert np.linalg.norm(lap2d.full() @ x - b) < 1e-8

    def test_repeated_factorization(self, lap2d, rng):
        """Analyze once, factorize many times (PEXSI-style usage)."""
        solver = SymPackSolver(lap2d, SolverOptions(nranks=2, offload=CPU_ONLY))
        b = rng.standard_normal(lap2d.n)
        for _ in range(3):
            solver.factorize()
            x, _ = solver.solve(b)
            assert solver.residual_norm(x, b) < 1e-10

    def test_repeated_solves_share_factor(self, lap2d, rng):
        solver = SymPackSolver(lap2d, SolverOptions(nranks=2, offload=CPU_ONLY))
        solver.factorize()
        for _ in range(3):
            b = rng.standard_normal(lap2d.n)
            x, _ = solver.solve(b)
            assert solver.residual_norm(x, b) < 1e-10

    def test_update_values_refactorizes_in_place(self, rng):
        """Numeric-only change: swap values, replay the cached graph."""
        a1 = grid_laplacian_2d(8, 8, shift=0.1)
        a2 = grid_laplacian_2d(8, 8, shift=0.9)
        solver = SymPackSolver(a1, SolverOptions(nranks=2, offload=CPU_ONLY))
        solver.factorize()
        solver.update_values(a2)
        solver.factorize()
        b = rng.standard_normal(a2.n)
        x, _ = solver.solve(b)
        assert np.linalg.norm(a2.full() @ x - b) < 1e-8
        # Matches a from-scratch solver on the new values exactly.
        fresh = SymPackSolver(a2, SolverOptions(nranks=2, offload=CPU_ONLY))
        fresh.factorize()
        x_fresh, _ = fresh.solve(b)
        assert np.array_equal(x, x_fresh)

    def test_update_values_rejects_new_pattern(self):
        a = grid_laplacian_2d(6, 6)
        other = random_spd(a.n, density=0.2, seed=1)
        solver = SymPackSolver(a, SolverOptions(offload=CPU_ONLY))
        solver.factorize()
        with pytest.raises(ValueError, match="pattern"):
            solver.update_values(other)

    def test_shared_analysis_between_solvers(self, rng):
        """A second solver reuses the first one's symbolic analysis."""
        a1 = grid_laplacian_2d(7, 7, shift=0.1)
        a2 = grid_laplacian_2d(7, 7, shift=0.4)
        opts = SolverOptions(nranks=2, offload=CPU_ONLY)
        first = SymPackSolver(a1, opts)
        second = SymPackSolver(a2, opts, analysis=first.analysis)
        assert second.analysis.perm is first.analysis.perm
        second.factorize()
        b = rng.standard_normal(a2.n)
        x, _ = second.solve(b)
        assert np.linalg.norm(a2.full() @ x - b) < 1e-8

    @pytest.mark.parametrize("ordering", ["natural", "rcm", "amd", "nd",
                                          "scotch_like"])
    def test_all_orderings_solve_correctly(self, ordering, rng):
        a = random_spd(35, density=0.15, seed=2)
        b = rng.standard_normal(a.n)
        solver = SymPackSolver(a, SolverOptions(nranks=2, ordering=ordering,
                                                offload=CPU_ONLY))
        solver.factorize()
        x, _ = solver.solve(b)
        assert solver.residual_norm(x, b) < 1e-10

    @pytest.mark.parametrize("mapping", ["2d", "1d-col", "1d-row"])
    def test_all_mappings_correct(self, mapping, lap2d, rng):
        b = rng.standard_normal(lap2d.n)
        solver = SymPackSolver(lap2d, SolverOptions(nranks=4, mapping=mapping,
                                                    offload=CPU_ONLY))
        solver.factorize()
        x, _ = solver.solve(b)
        assert solver.residual_norm(x, b) < 1e-10

    def test_gpu_mode_same_answer(self, rng):
        a = grid_laplacian_2d(15, 15)
        b = rng.standard_normal(a.n)
        cpu = SymPackSolver(a, SolverOptions(nranks=4, offload=CPU_ONLY))
        cpu.factorize()
        x_cpu, _ = cpu.solve(b)
        gpu = SymPackSolver(a, SolverOptions(
            nranks=4, ranks_per_node=4,
            offload=OffloadPolicy().with_thresholds(GEMM=128, SYRK=128,
                                                    TRSM=128, POTRF=128)))
        gpu.factorize()
        x_gpu, _ = gpu.solve(b)
        assert np.allclose(x_cpu, x_gpu, atol=1e-12)

    def test_memory_kinds_mode_does_not_change_answer(self, lap2d, rng):
        b = rng.standard_normal(lap2d.n)
        answers = []
        for mode in (MemoryKindsMode.NATIVE, MemoryKindsMode.REFERENCE):
            s = SymPackSolver(lap2d, SolverOptions(nranks=4, ranks_per_node=4,
                                                   memory_kinds=mode))
            s.factorize()
            x, _ = s.solve(b)
            answers.append(x)
        assert np.allclose(answers[0], answers[1], atol=1e-12)


class TestApiGuards:
    def test_solve_before_factorize_raises(self, lap2d):
        solver = SymPackSolver(lap2d)
        with pytest.raises(RuntimeError, match="factorize"):
            solver.solve(np.ones(lap2d.n))

    def test_rejects_nonpositive_diagonal(self):
        a = SymmetricCSC.from_any(np.array([[1.0, 0.0], [0.0, -1.0]]))
        with pytest.raises(ValueError, match="SPD"):
            SymPackSolver(a)

    def test_rejects_indefinite_at_factorization(self):
        # Positive diagonal but indefinite: caught by POTRF.
        a = SymmetricCSC.from_any(np.array([[1.0, 2.0], [2.0, 1.0]]))
        from repro.sparse import NotPositiveDefiniteError
        solver = SymPackSolver(a)
        with pytest.raises(NotPositiveDefiniteError):
            solver.factorize()

    def test_rejects_nan(self):
        a = SymmetricCSC.from_any(np.array([[1.0, 0.0], [0.0, 1.0]]))
        a.lower.data[0] = np.nan
        with pytest.raises(ValueError, match="non-finite"):
            SymPackSolver(a)

    def test_factor_sparse_requires_factorize(self, lap2d):
        with pytest.raises(RuntimeError):
            SymPackSolver(lap2d).factor_sparse()


class TestInfoReporting:
    def test_factorize_info_fields(self, lap2d):
        solver = SymPackSolver(lap2d, SolverOptions(nranks=4, offload=CPU_ONLY))
        info = solver.factorize()
        assert info.simulated_seconds > 0
        assert info.tasks > 0
        assert len(info.rank_busy) == 4
        assert info.comm.rpcs_sent > 0

    def test_solve_info_fields(self, lap2d, rng):
        solver = SymPackSolver(lap2d, SolverOptions(nranks=2, offload=CPU_ONLY))
        solver.factorize()
        _, info = solver.solve(rng.standard_normal(lap2d.n))
        assert info.simulated_seconds > 0
        assert info.tasks > 0

    def test_factor_sparse_is_cholesky(self, lap2d):
        solver = SymPackSolver(lap2d, SolverOptions(offload=CPU_ONLY))
        solver.factorize()
        l = np.tril(solver.factor_sparse().toarray())
        a_perm = solver.analysis.a_perm.to_dense()
        assert np.allclose(l @ l.T, a_perm, atol=1e-10)

    def test_device_capacity_resolution(self):
        opts = SolverOptions(nranks=8, ranks_per_node=8)
        cap = opts.resolved_device_capacity()
        # 8 ranks share 4 GPUs -> 2 sharers per device.
        assert cap == opts.machine.gpu_mem_bytes // 2

    def test_cpu_only_capacity_none(self):
        assert SolverOptions(offload=CPU_ONLY).resolved_device_capacity() is None
