"""Unit tests for the dense-panel factor storage."""

import numpy as np
import pytest

from repro.core import FactorStorage
from repro.symbolic import analyze


class TestInitialization:
    def test_holds_a_entries(self, tiny_spd):
        an = analyze(tiny_spd, ordering="natural")
        st = FactorStorage(an)
        # Reassemble: the initial storage must equal the permuted A's
        # lower triangle wherever A is nonzero.
        rebuilt = st.to_sparse_factor().toarray()
        expected = an.a_perm.lower.toarray()
        mask = expected != 0
        assert np.allclose(rebuilt[mask], expected[mask])

    def test_panel_shapes(self, lap2d):
        an = analyze(lap2d)
        st = FactorStorage(an)
        part = an.supernodes
        for s in range(part.nsup):
            w = part.width(s)
            assert st.diag_block(s).shape == (w, w)
            assert st.panels[s].shape == (part.structs[s].size, w)

    def test_block_views_alias_panels(self, lap2d):
        """Blocks are views: writing a block writes the panel (zero copy)."""
        an = analyze(lap2d)
        st = FactorStorage(an)
        for s in range(an.nsup):
            for bi, b in enumerate(an.blocks.blocks[s]):
                view = st.off_block(s, bi)
                assert np.shares_memory(view, st.panels[s]) or not view.size
                if view.size:
                    view[0, 0] = 123.0
                    assert st.panels[s][b.offset, 0] == 123.0

    def test_row_positions(self, lap2d):
        an = analyze(lap2d)
        st = FactorStorage(an)
        for s in range(an.nsup):
            struct = an.supernodes.structs[s]
            if struct.size >= 2:
                pos = st.row_positions(s, struct[[0, -1]])
                assert list(pos) == [0, struct.size - 1]
                break

    def test_row_positions_missing_raises(self, lap2d):
        an = analyze(lap2d)
        st = FactorStorage(an)
        with pytest.raises(KeyError):
            st.row_positions(0, np.array([10**6]))

    def test_factor_bytes_positive(self, lap2d):
        an = analyze(lap2d)
        st = FactorStorage(an)
        assert st.factor_bytes() >= an.factor_nnz() * 8 // 2
