"""Unit tests for the fan-out factorization task graph (paper Fig. 2)."""

import numpy as np
import pytest

from repro.core import (
    CPU_ONLY,
    FactorStorage,
    TaskKind,
    build_factor_graph,
    make_map,
)
from repro.kernels.dispatch import KERNEL_OPS
from repro.sparse import random_spd
from repro.symbolic import analyze


def graph_for(a, nranks=4):
    an = analyze(a)
    st = FactorStorage(an)
    g = build_factor_graph(an, st, make_map(nranks), CPU_ONLY)
    return an, st, g


class TestStructure:
    def test_task_counts(self, lap2d):
        an, _, g = graph_for(lap2d)
        kinds = [t.kind for t in g.tasks]
        assert kinds.count(TaskKind.DIAG) == an.nsup
        n_blocks = sum(len(b) for b in an.blocks.blocks)
        assert kinds.count(TaskKind.FACTOR) == n_blocks
        # One U per ordered pair (bi >= bj) per supernode.
        expected_u = sum(len(b) * (len(b) + 1) // 2
                         for b in an.blocks.blocks)
        assert kinds.count(TaskKind.UPDATE) == expected_u

    def test_validates(self, corner_case):
        _, _, g = graph_for(corner_case)
        g.validate()

    def test_update_tasks_local_to_target(self, lap2d):
        """U -> F/D edges never cross ranks (fan-out defining property)."""
        an, _, g = graph_for(lap2d, nranks=6)
        for t in g.tasks:
            if t.kind == TaskKind.UPDATE:
                for c in t.local_consumers:
                    assert g.tasks[c].rank == t.rank
                # An update task never *sends* messages.
                assert not t.messages

    def test_ownership_follows_map(self, lap2d):
        an, _, g = graph_for(lap2d, nranks=4)
        pmap = make_map(4)
        for t in g.tasks:
            if t.kind == TaskKind.DIAG:
                s = int(t.label[2:-1])
                assert t.rank == pmap(s, s)

    def test_message_coalescing_one_per_rank(self, corner_case):
        """A factorized block is sent at most once per destination rank."""
        _, _, g = graph_for(corner_case, nranks=3)
        for t in g.tasks:
            dsts = [m.dst_rank for m in t.messages]
            assert len(dsts) == len(set(dsts))
            for m in t.messages:
                assert m.dst_rank != t.rank

    def test_single_rank_no_messages(self, lap2d):
        _, _, g = graph_for(lap2d, nranks=1)
        assert all(not t.messages for t in g.tasks)

    def test_acyclic(self, lap2d):
        """Kahn's algorithm consumes every task (no cycles)."""
        _, _, g = graph_for(lap2d, nranks=4)
        indeg = [t.deps for t in g.tasks]
        consumers = {t.tid: list(t.local_consumers) for t in g.tasks}
        for t in g.tasks:
            for m in t.messages:
                consumers[t.tid].extend(m.consumers)
        ready = [t.tid for t in g.tasks if indeg[t.tid] == 0]
        seen = 0
        while ready:
            tid = ready.pop()
            seen += 1
            for c in consumers[tid]:
                indeg[c] -= 1
                if indeg[c] == 0:
                    ready.append(c)
        assert seen == len(g.tasks)


class TestSequentialExecution:
    """Executing the graph in any topological order yields the true L."""

    @pytest.mark.parametrize("seed", range(3))
    def test_topological_run_matches_scipy(self, seed):
        a = random_spd(30, density=0.15, seed=seed)
        an, st, g = graph_for(a, nranks=2)
        indeg = [t.deps for t in g.tasks]
        consumers = {t.tid: list(t.local_consumers) for t in g.tasks}
        for t in g.tasks:
            for m in t.messages:
                consumers[t.tid].extend(m.consumers)
        ready = [t.tid for t in g.tasks if indeg[t.tid] == 0]
        while ready:
            tid = ready.pop(0)
            call = g.tasks[tid].kernel
            KERNEL_OPS[call.op](g.context, *call.args)
            for c in consumers[tid]:
                indeg[c] -= 1
                if indeg[c] == 0:
                    ready.append(c)
        l = st.to_sparse_factor().toarray()
        expected = np.linalg.cholesky(an.a_perm.to_dense())
        assert np.allclose(np.tril(l), expected, atol=1e-10)

    def test_flops_totals_match_symbolic_estimate(self, lap2d):
        an, _, g = graph_for(lap2d)
        total = sum(t.flops for t in g.tasks)
        est = an.factor_flops()
        # Supernodal flops are within a small factor of the column-count
        # estimate (amalgamation adds some, blocking changes constants).
        assert 0.2 * est < total < 5 * est
