"""Unit tests for task graph structures."""

import pytest

from repro.core import OutMessage, TaskGraph, TaskKind


def add_task(g, rank=0, **kw):
    defaults = dict(kind=TaskKind.DIAG, rank=rank, op="POTRF", flops=1.0,
                    buffer_elems=1, operand_bytes=8)
    defaults.update(kw)
    return g.new_task(**defaults)


class TestTaskGraph:
    def test_ids_dense(self):
        g = TaskGraph()
        tasks = [add_task(g) for _ in range(5)]
        assert [t.tid for t in tasks] == [0, 1, 2, 3, 4]

    def test_local_dependency_counts(self):
        g = TaskGraph()
        a, b = add_task(g), add_task(g)
        g.add_dependency(a, b)
        assert b.deps == 1
        assert b.tid in a.local_consumers

    def test_cross_rank_local_edge_rejected(self):
        g = TaskGraph()
        a, b = add_task(g, rank=0), add_task(g, rank=1)
        with pytest.raises(ValueError, match="local"):
            g.add_dependency(a, b)

    def test_roots(self):
        g = TaskGraph()
        a, b, c = (add_task(g) for _ in range(3))
        g.add_dependency(a, b)
        assert {t.tid for t in g.roots()} == {a.tid, c.tid}

    def test_validate_accepts_consistent(self):
        g = TaskGraph()
        a = add_task(g, rank=0)
        b = add_task(g, rank=1)
        a.messages.append(OutMessage(dst_rank=1, nbytes=8,
                                     consumers=[b.tid]))
        b.deps += 1
        g.validate()

    def test_validate_rejects_wrong_count(self):
        g = TaskGraph()
        a, b = add_task(g), add_task(g)
        a.local_consumers.append(b.tid)  # edge without counting deps
        with pytest.raises(ValueError, match="incoming"):
            g.validate()

    def test_validate_rejects_misrouted_message(self):
        g = TaskGraph()
        a = add_task(g, rank=0)
        b = add_task(g, rank=1)
        a.messages.append(OutMessage(dst_rank=0, nbytes=8,
                                     consumers=[b.tid]))
        b.deps += 1
        with pytest.raises(ValueError, match="not on rank"):
            g.validate()
