"""Tests of timeline analysis and Gantt rendering."""

import pytest

from repro import CPU_ONLY, SolverOptions, SymPackSolver
from repro.core import ExecutionTrace, analyze_timeline, render_gantt
from repro.sparse import grid_laplacian_2d


@pytest.fixture
def traced_solver(rng):
    a = grid_laplacian_2d(10, 10)
    solver = SymPackSolver(a, SolverOptions(nranks=4, offload=CPU_ONLY,
                                            keep_timeline=True))
    solver.factorize()
    return solver


class TestAnalyzeTimeline:
    def test_requires_timeline(self):
        with pytest.raises(ValueError, match="no timeline"):
            analyze_timeline(ExecutionTrace())

    def test_stats_consistent(self, traced_solver):
        stats = analyze_timeline(traced_solver.trace)
        assert stats.makespan > 0
        assert stats.nranks <= 4
        assert sum(stats.rank_tasks.values()) == len(
            traced_solver.trace.timeline)

    def test_utilization_bounded(self, traced_solver):
        stats = analyze_timeline(traced_solver.trace)
        for rank in stats.rank_busy:
            assert 0.0 < stats.utilization(rank) <= 1.0 + 1e-9
        assert 0.0 < stats.mean_utilization() <= 1.0 + 1e-9

    def test_kind_breakdown(self, traced_solver):
        stats = analyze_timeline(traced_solver.trace)
        assert set(stats.kind_time) >= {"D", "F", "U"}
        assert all(t > 0 for t in stats.kind_time.values())

    def test_load_imbalance_at_least_one(self, traced_solver):
        assert analyze_timeline(traced_solver.trace).load_imbalance() >= 1.0

    def test_busy_time_below_makespan(self, traced_solver):
        stats = analyze_timeline(traced_solver.trace)
        for busy in stats.rank_busy.values():
            assert busy <= stats.makespan + 1e-12


class TestGantt:
    def test_renders_rows_per_rank(self, traced_solver):
        out = render_gantt(traced_solver.trace, width=40)
        lines = out.splitlines()
        assert lines[0].startswith("timeline:")
        assert sum(1 for l in lines if l.startswith("rank")) <= 4
        assert "#" in out

    def test_requires_timeline(self):
        with pytest.raises(ValueError):
            render_gantt(ExecutionTrace())
