"""Unit tests for execution tracing and op counters."""

from repro.core import ExecutionTrace, OpCounters


class TestOpCounters:
    def test_record_and_query(self):
        c = OpCounters()
        c.record(0, "GEMM", "cpu", 100.0)
        c.record(0, "GEMM", "gpu", 200.0)
        c.record(1, "POTRF", "cpu", 50.0)
        by_op = c.calls_by_op()
        assert by_op["GEMM"] == {"cpu": 1, "gpu": 1}
        assert by_op["POTRF"] == {"cpu": 1, "gpu": 0}

    def test_rank_filter(self):
        c = OpCounters()
        c.record(0, "SYRK", "cpu", 1.0)
        c.record(1, "SYRK", "cpu", 1.0)
        assert c.calls_by_op(rank=0)["SYRK"]["cpu"] == 1

    def test_totals(self):
        c = OpCounters()
        c.record(0, "GEMM", "cpu", 10.0)
        c.record(0, "TRSM", "gpu", 30.0)
        assert c.total_calls() == 2
        assert c.total_calls("gpu") == 1
        assert c.total_flops() == 40.0
        assert c.total_flops("cpu") == 10.0


class TestExecutionTrace:
    def test_timeline_off_by_default(self):
        t = ExecutionTrace()
        t.record_task(0.0, 1.0, 0, "D[0]")
        assert t.tasks_executed == 1
        assert t.timeline == []

    def test_timeline_opt_in(self):
        t = ExecutionTrace(keep_timeline=True)
        t.record_task(0.0, 1.0, 2, "F[1,0]")
        assert t.timeline == [(0.0, 1.0, 2, "F[1,0]")]
