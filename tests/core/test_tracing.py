"""Unit tests for execution tracing and op counters."""

import threading

from repro.core import ExecutionTrace, OpCounters
from repro.core.tracing import ServiceEvent


class TestOpCounters:
    def test_record_and_query(self):
        c = OpCounters()
        c.record(0, "GEMM", "cpu", 100.0)
        c.record(0, "GEMM", "gpu", 200.0)
        c.record(1, "POTRF", "cpu", 50.0)
        by_op = c.calls_by_op()
        assert by_op["GEMM"] == {"cpu": 1, "gpu": 1}
        assert by_op["POTRF"] == {"cpu": 1, "gpu": 0}

    def test_rank_filter(self):
        c = OpCounters()
        c.record(0, "SYRK", "cpu", 1.0)
        c.record(1, "SYRK", "cpu", 1.0)
        assert c.calls_by_op(rank=0)["SYRK"]["cpu"] == 1

    def test_totals(self):
        c = OpCounters()
        c.record(0, "GEMM", "cpu", 10.0)
        c.record(0, "TRSM", "gpu", 30.0)
        assert c.total_calls() == 2
        assert c.total_calls("gpu") == 1
        assert c.total_flops() == 40.0
        assert c.total_flops("cpu") == 10.0


class TestExecutionTrace:
    def test_timeline_off_by_default(self):
        t = ExecutionTrace()
        t.record_task(0.0, 1.0, 0, "D[0]")
        assert t.tasks_executed == 1
        assert t.timeline == []

    def test_timeline_opt_in(self):
        t = ExecutionTrace(keep_timeline=True)
        t.record_task(0.0, 1.0, 2, "F[1,0]")
        assert t.timeline == [(0.0, 1.0, 2, "F[1,0]")]

    def test_transfer_and_fallback_accumulators(self):
        t = ExecutionTrace()
        t.add_h2d(100)
        t.add_h2d(50)
        t.add_d2h(30)
        t.record_fallback()
        assert t.h2d_bytes == 150
        assert t.d2h_bytes == 30
        assert t.gpu_fallbacks == 1

    def test_service_events_and_tier_counts(self):
        t = ExecutionTrace()
        t.record_request(ServiceEvent(request_id=0, tier="cold",
                                      queue_wait=0.1, makespan=1.0))
        t.record_request(ServiceEvent(request_id=1, tier="factor",
                                      queue_wait=0.0, makespan=0.2,
                                      coalesced_width=3))
        t.record_request(ServiceEvent(request_id=2, tier="factor",
                                      queue_wait=0.0, makespan=0.2))
        assert t.tier_counts() == {"cold": 1, "factor": 2}
        assert t.service_events[1].coalesced_width == 3


class TestThreadSafety:
    """The service shares one trace across worker threads — counters must
    not drop updates under concurrent recording."""

    THREADS = 8
    PER_THREAD = 500

    def _hammer(self, fn):
        threads = [threading.Thread(target=fn) for _ in range(self.THREADS)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

    def test_concurrent_op_counter_record(self):
        c = OpCounters()

        def work():
            for i in range(self.PER_THREAD):
                c.record(i % 4, "GEMM", "cpu" if i % 2 else "gpu", 2.0)

        self._hammer(work)
        total = self.THREADS * self.PER_THREAD
        assert c.total_calls() == total
        assert c.total_flops() == 2.0 * total

    def test_concurrent_trace_recording(self):
        t = ExecutionTrace()

        def work():
            for i in range(self.PER_THREAD):
                t.record_task(0.0, 1.0, i % 4, "D[0]")
                t.add_h2d(8)
                t.add_d2h(4)
                t.record_fallback()
                t.record_request(ServiceEvent(
                    request_id=i, tier="factor",
                    queue_wait=0.0, makespan=0.1))

        self._hammer(work)
        total = self.THREADS * self.PER_THREAD
        assert t.tasks_executed == total
        assert t.h2d_bytes == 8 * total
        assert t.d2h_bytes == 4 * total
        assert t.gpu_fallbacks == total
        assert len(t.service_events) == total
        assert t.tier_counts() == {"factor": total}
