"""Unit tests for the distributed triangular-solve task graphs."""

import numpy as np
import pytest

from repro.core import (
    CPU_ONLY,
    FactorStorage,
    FanOutEngine,
    TaskKind,
    build_backward_graph,
    build_factor_graph,
    build_forward_graph,
    make_map,
)
from repro.machine import perlmutter
from repro.pgas import World
from repro.sparse import random_spd
from repro.symbolic import analyze


@pytest.fixture
def factored(lap2d):
    an = analyze(lap2d)
    st = FactorStorage(an)
    pmap = make_map(4)
    world = World(4, perlmutter(), ranks_per_node=4)
    engine = FanOutEngine(world, build_factor_graph(an, st, pmap, CPU_ONLY),
                          CPU_ONLY)
    engine.run()
    return an, st, pmap


def run_graph(graph, nranks=4):
    world = World(nranks, perlmutter(), ranks_per_node=min(4, nranks))
    engine = FanOutEngine(world, graph, CPU_ONLY)
    return engine.run()


class TestForward:
    def test_forward_solves_l(self, factored, rng):
        an, st, pmap = factored
        l = np.tril(st.to_sparse_factor().toarray())
        b = rng.standard_normal((an.n, 1))
        rhs = b.copy()
        run_graph(build_forward_graph(an, st, pmap, rhs))
        assert np.allclose(l @ rhs, b, atol=1e-10)

    def test_forward_task_kinds(self, factored, rng):
        an, st, pmap = factored
        g = build_forward_graph(an, st, pmap, rng.standard_normal((an.n, 1)))
        kinds = {t.kind for t in g.tasks}
        assert kinds <= {TaskKind.FWD, TaskKind.FUP}
        assert sum(1 for t in g.tasks if t.kind == TaskKind.FWD) == an.nsup


class TestBackward:
    def test_backward_solves_lt(self, factored, rng):
        an, st, pmap = factored
        l = np.tril(st.to_sparse_factor().toarray())
        y = rng.standard_normal((an.n, 1))
        rhs = y.copy()
        run_graph(build_backward_graph(an, st, pmap, rhs))
        assert np.allclose(l.T @ rhs, y, atol=1e-10)


class TestCombined:
    @pytest.mark.parametrize("nranks", [1, 2, 5, 8])
    def test_full_solve_any_ranks(self, nranks, rng):
        a = random_spd(40, density=0.12, seed=3)
        an = analyze(a)
        st = FactorStorage(an)
        pmap = make_map(nranks)
        run_graph(build_factor_graph(an, st, pmap, CPU_ONLY), nranks)
        b = rng.standard_normal((a.n, 2))
        rhs = b[an.perm.perm].copy()
        run_graph(build_forward_graph(an, st, pmap, rhs), nranks)
        run_graph(build_backward_graph(an, st, pmap, rhs), nranks)
        x = rhs[an.perm.iperm]
        assert np.linalg.norm(a.full() @ x - b) < 1e-8

    def test_graphs_validate(self, factored, rng):
        an, st, pmap = factored
        rhs = rng.standard_normal((an.n, 1))
        build_forward_graph(an, st, pmap, rhs).validate()
        build_backward_graph(an, st, pmap, rhs).validate()

    def test_message_coalescing_forward(self, factored, rng):
        """FWD_s's solution piece is sent at most once per rank."""
        an, st, pmap = factored
        g = build_forward_graph(an, st, pmap, rng.standard_normal((an.n, 1)))
        for t in g.tasks:
            if t.kind == TaskKind.FWD:
                seen = {}
                for m in t.messages:
                    key = (m.dst_rank, m.nbytes)
                    assert key not in seen
                    seen[key] = True
