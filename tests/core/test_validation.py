"""Tests of the numerical validation / error-analysis utilities."""

import numpy as np
import pytest

from repro import CPU_ONLY, SolverOptions, SymPackSolver
from repro.core.validation import (
    condition_estimate_1norm,
    diagnose_solve,
    factor_reconstruction_error,
    normwise_backward_error,
)
from repro.sparse import SymmetricCSC, grid_laplacian_2d


@pytest.fixture
def solved(lap2d, rng):
    solver = SymPackSolver(lap2d, SolverOptions(nranks=2, offload=CPU_ONLY))
    solver.factorize()
    b = rng.standard_normal(lap2d.n)
    x, _ = solver.solve(b)
    return solver, x, b


class TestReconstructionError:
    def test_near_epsilon_for_good_factor(self, solved):
        solver, _, _ = solved
        err = factor_reconstruction_error(solver.analysis.a_perm.lower,
                                          solver.factor_sparse())
        assert err < 1e-13

    def test_detects_corrupted_factor(self, solved):
        solver, _, _ = solved
        l_factor = solver.factor_sparse().tolil()
        l_factor[0, 0] *= 2.0
        err = factor_reconstruction_error(solver.analysis.a_perm.lower,
                                          l_factor.tocsc())
        assert err > 1e-3


class TestBackwardError:
    def test_solve_is_backward_stable(self, solved):
        solver, x, b = solved
        assert normwise_backward_error(solver.a, x, b) < 1e-13

    def test_perturbed_solution_detected(self, solved):
        solver, x, b = solved
        bad = x.copy()
        bad[0] += 1.0
        assert (normwise_backward_error(solver.a, bad, b)
                > 100 * normwise_backward_error(solver.a, x, b))


class TestConditionEstimate:
    def test_within_factor_of_true_condition(self, rng):
        a = grid_laplacian_2d(8, 8)
        solver = SymPackSolver(a, SolverOptions(offload=CPU_ONLY))
        solver.factorize()
        est = condition_estimate_1norm(a, lambda b: solver.solve(b)[0])
        dense = a.to_dense()
        true_cond = (np.linalg.norm(dense, 1)
                     * np.linalg.norm(np.linalg.inv(dense), 1))
        assert true_cond / 10 < est < true_cond * 10

    def test_identity_is_one(self):
        a = SymmetricCSC.from_any(np.eye(10))
        est = condition_estimate_1norm(a, lambda b: b)
        assert est == pytest.approx(1.0, rel=0.2)


class TestDiagnostics:
    def test_healthy_solve(self, solved):
        solver, x, b = solved
        diag = diagnose_solve(solver, x, b)
        assert diag.healthy()
        assert diag.relative_residual < 1e-12
        assert diag.forward_error_bound >= diag.backward_error

    def test_unhealthy_detected(self, solved):
        solver, x, b = solved
        diag = diagnose_solve(solver, x + 0.5, b)
        assert not diag.healthy()
