"""End-to-end integration tests: full pipeline vs SciPy on every family."""

import numpy as np
import pytest

from repro import CPU_ONLY, OffloadPolicy, SolverOptions, SymPackSolver
from repro.baselines import PastixLikeSolver, PastixOptions, reference_solve
from repro.sparse import (
    bone_like,
    flan_like,
    grid_laplacian_2d,
    grid_laplacian_3d,
    random_spd,
    thermal_like,
)

FAMILIES = [
    ("flan", lambda: flan_like(scale=6)),
    ("bone", lambda: bone_like(scale=8, seed=1)),
    ("thermal", lambda: thermal_like(n=300, seed=2)),
    ("lap2d", lambda: grid_laplacian_2d(12, 9)),
    ("lap3d", lambda: grid_laplacian_3d(5, 4, 6)),
    ("random", lambda: random_spd(60, density=0.1, seed=8)),
]


@pytest.mark.parametrize("name,factory", FAMILIES)
class TestFullPipeline:
    def test_sympack_matches_scipy(self, name, factory, rng):
        a = factory()
        b = rng.standard_normal(a.n)
        solver = SymPackSolver(a, SolverOptions(nranks=4, ranks_per_node=4,
                                                offload=CPU_ONLY))
        solver.factorize()
        x, _ = solver.solve(b)
        x_ref = reference_solve(a, b)
        assert np.allclose(x, x_ref, atol=1e-6), name

    def test_sympack_gpu_mode(self, name, factory, rng):
        a = factory()
        b = rng.standard_normal(a.n)
        solver = SymPackSolver(a, SolverOptions(
            nranks=4, ranks_per_node=4,
            offload=OffloadPolicy().with_thresholds(GEMM=512, SYRK=512,
                                                    TRSM=512, POTRF=512)))
        solver.factorize()
        x, _ = solver.solve(b)
        assert solver.residual_norm(x, b) < 1e-10

    def test_pastix_matches_sympack(self, name, factory, rng):
        a = factory()
        b = rng.standard_normal(a.n)
        sym = SymPackSolver(a, SolverOptions(nranks=3, offload=CPU_ONLY))
        sym.factorize()
        x_sym, _ = sym.solve(b)
        pas = PastixLikeSolver(a, PastixOptions(nranks=3, offload=CPU_ONLY))
        pas.factorize()
        x_pas, _ = pas.solve(b)
        assert np.allclose(x_sym, x_pas, atol=1e-9)


class TestNumericalQuality:
    def test_residual_scales_with_machine_eps(self, rng):
        """Residuals stay near machine epsilon even for moderate
        condition numbers."""
        a = grid_laplacian_2d(20, 20, shift=1e-4)  # milder shift: worse cond
        b = rng.standard_normal(a.n)
        solver = SymPackSolver(a, SolverOptions(nranks=2, offload=CPU_ONLY))
        solver.factorize()
        x, _ = solver.solve(b)
        assert solver.residual_norm(x, b) < 1e-9

    def test_identity_rhs_columns(self):
        """Solving against identity columns yields A^{-1} columns."""
        a = random_spd(20, density=0.3, seed=13)
        solver = SymPackSolver(a, SolverOptions(offload=CPU_ONLY))
        solver.factorize()
        eye = np.eye(20)
        x, _ = solver.solve(eye)
        assert np.allclose(a.to_dense() @ x, eye, atol=1e-8)
