"""Smoke tests for the example scripts.

Each example must at least compile and expose a ``main`` entry point; the
two fastest are executed end-to-end (the others exercise exactly the same
library paths at larger sizes and are run by the documented workflow).
"""

import py_compile
import runpy
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent.parent / "examples"
ALL_EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_exist():
    names = {p.name for p in ALL_EXAMPLES}
    assert "quickstart.py" in names
    assert len(names) >= 5  # quickstart + >= 4 scenario examples


@pytest.mark.parametrize("path", ALL_EXAMPLES, ids=lambda p: p.name)
def test_example_compiles(path):
    py_compile.compile(str(path), doraise=True)


@pytest.mark.parametrize("path", ALL_EXAMPLES, ids=lambda p: p.name)
def test_example_has_main(path):
    text = path.read_text()
    assert "def main()" in text
    assert '__name__ == "__main__"' in text
    assert path.read_text().startswith('"""')  # documented


def test_run_repeated_factorization(monkeypatch, capsys):
    """The PEXSI-style example end-to-end (the fastest full scenario)."""
    monkeypatch.syspath_prepend(str(EXAMPLES_DIR))
    runpy.run_path(str(EXAMPLES_DIR / "repeated_factorization_pexsi.py"),
                   run_name="__main__")
    out = capsys.readouterr().out
    assert "located lambda_min" in out


def test_run_factor_reuse(monkeypatch, capsys):
    monkeypatch.syspath_prepend(str(EXAMPLES_DIR))
    runpy.run_path(str(EXAMPLES_DIR / "factor_reuse_and_diagnostics.py"),
                   run_name="__main__")
    out = capsys.readouterr().out
    assert "healthy           : True" in out
