"""Failure-injection tests: the solver's behaviour under bad inputs and
resource exhaustion (paper Section 4.2 fallback options)."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro import CPU_ONLY, OffloadPolicy, SolverOptions, SymPackSolver
from repro.pgas import DeviceOutOfMemory, OomFallback
from repro.sparse import (
    NotPositiveDefiniteError,
    SymmetricCSC,
    grid_laplacian_2d,
    random_spd,
)


class TestBadInputs:
    def test_nan_rejected_up_front(self):
        a = grid_laplacian_2d(4, 4)
        a.lower.data[3] = np.nan
        with pytest.raises(ValueError, match="non-finite"):
            SymPackSolver(a)

    def test_inf_rejected_up_front(self):
        a = grid_laplacian_2d(4, 4)
        a.lower.data[0] = np.inf
        with pytest.raises(ValueError, match="non-finite"):
            SymPackSolver(a)

    def test_zero_diagonal_rejected(self):
        a = SymmetricCSC.from_any(np.array([[0.0, 1.0], [1.0, 2.0]]))
        with pytest.raises(ValueError, match="SPD"):
            SymPackSolver(a)

    @pytest.mark.parametrize("bad_col", [0, 5, 15])
    def test_indefinite_detected_wherever_it_hides(self, bad_col):
        """POTRF must fail whichever supernode holds the bad pivot."""
        a = random_spd(16, density=0.2, seed=1).to_dense()
        # Make the matrix indefinite by cratering one diagonal entry while
        # keeping it positive (passes the pre-check, fails numerically).
        a[bad_col, bad_col] = 1e-8
        off = np.abs(a[bad_col]).sum() - abs(a[bad_col, bad_col])
        if off == 0:
            a[bad_col, (bad_col + 1) % 16] = 5.0
            a[(bad_col + 1) % 16, bad_col] = 5.0
        solver = SymPackSolver(SymmetricCSC.from_any(a),
                               SolverOptions(nranks=2, offload=CPU_ONLY))
        with pytest.raises(NotPositiveDefiniteError):
            solver.factorize()

    def test_explicitly_negative_pivot_detected(self):
        """A 2x2 block with a negative Schur complement must fail: the
        second pivot of [[1, 2], [2, 1]] is 1 - 4 = -3."""
        a = np.eye(6) * 5.0
        a[3, 4] = a[4, 3] = 2.0
        a[3, 3] = a[4, 4] = 1.0
        solver = SymPackSolver(SymmetricCSC.from_any(a),
                               SolverOptions(offload=CPU_ONLY))
        with pytest.raises(NotPositiveDefiniteError):
            solver.factorize()

    def test_ill_conditioned_degrades_gracefully(self, rng):
        """Very ill-conditioned but SPD: must complete with a residual
        bounded by cond(A) * eps, not crash."""
        d = np.logspace(0, 12, 12)  # cond ~ 1e12
        a = SymmetricCSC.from_any(np.diag(d))
        solver = SymPackSolver(a, SolverOptions(offload=CPU_ONLY))
        solver.factorize()
        b = rng.standard_normal(12)
        x, _ = solver.solve(b)
        assert solver.residual_norm(x, b) < 1e-3


class TestDeviceExhaustion:
    """The paper's 'fallback options' (Section 4.2): CPU fallback by
    default, or an exception for users who prefer to rerun with more
    device memory."""

    def _solver(self, fallback, capacity):
        a = grid_laplacian_2d(16, 16)
        policy = OffloadPolicy(oom_fallback=fallback).with_thresholds(
            GEMM=32, SYRK=32, TRSM=32, POTRF=32)
        return SymPackSolver(a, SolverOptions(
            nranks=2, ranks_per_node=2, offload=policy,
            device_capacity=capacity))

    def test_default_fallback_completes_on_cpu(self, rng):
        solver = self._solver(OomFallback.CPU, capacity=4096)
        solver.factorize()
        b = rng.standard_normal(256)
        x, _ = solver.solve(b)
        assert solver.residual_norm(x, b) < 1e-10
        assert solver.trace.gpu_fallbacks > 0

    def test_raise_option_terminates(self):
        solver = self._solver(OomFallback.RAISE, capacity=4096)
        with pytest.raises(DeviceOutOfMemory):
            solver.factorize()

    def test_ample_memory_no_fallbacks(self, rng):
        solver = self._solver(OomFallback.CPU, capacity=1 << 30)
        solver.factorize()
        assert solver.trace.gpu_fallbacks == 0


class TestDegenerateShapes:
    def test_1x1_matrix(self):
        a = SymmetricCSC.from_any(np.array([[4.0]]))
        solver = SymPackSolver(a, SolverOptions(offload=CPU_ONLY))
        solver.factorize()
        x, _ = solver.solve(np.array([8.0]))
        assert np.allclose(x, [2.0])

    def test_more_ranks_than_supernodes(self, rng):
        """Gross over-decomposition must still work (idle ranks)."""
        a = SymmetricCSC.from_any(np.diag([1.0, 2.0, 3.0]))
        solver = SymPackSolver(a, SolverOptions(nranks=32,
                                                offload=CPU_ONLY))
        solver.factorize()
        b = rng.standard_normal(3)
        x, _ = solver.solve(b)
        assert solver.residual_norm(x, b) < 1e-12

    def test_fully_dense_matrix(self, rng):
        g = rng.standard_normal((12, 12))
        a = SymmetricCSC.from_any(g @ g.T + 12 * np.eye(12))
        solver = SymPackSolver(a, SolverOptions(nranks=4, offload=CPU_ONLY))
        solver.factorize()
        b = rng.standard_normal(12)
        x, _ = solver.solve(b)
        assert solver.residual_norm(x, b) < 1e-10

    def test_disconnected_components(self, rng):
        blocks = [random_spd(8, density=0.3, seed=s).to_dense()
                  for s in range(3)]
        a = SymmetricCSC.from_any(sp.block_diag(blocks, format="csc"))
        solver = SymPackSolver(a, SolverOptions(nranks=3, offload=CPU_ONLY))
        solver.factorize()
        b = rng.standard_normal(24)
        x, _ = solver.solve(b)
        assert solver.residual_norm(x, b) < 1e-10
