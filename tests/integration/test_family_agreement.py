"""Cross-family agreement: five algorithm families, one Cholesky factor.

Fan-out, fan-in, fan-both, multifrontal, and the PaStiX-like baseline are
the same mathematics organised differently (paper Section 2), so on any
matrix they must produce the identical factor L up to roundoff.  The
fan-out core is the reference; every other family is compared against it
to <= 1e-12 on scaled-down versions of the paper's three workloads.
"""

import numpy as np
import pytest

from repro import CPU_ONLY, SolverOptions, SymPackSolver
from repro.baselines.pastix_like import PastixLikeSolver, PastixOptions
from repro.sparse import bone_like, flan_like, thermal_like
from repro.variants import (
    FanBothOptions,
    FanBothSolver,
    FanInOptions,
    FanInSolver,
    MultifrontalOptions,
    MultifrontalSolver,
)

MATRICES = {
    "flan_like": lambda: flan_like(scale=6),
    "bone_like": lambda: bone_like(scale=8),
    "thermal_like": lambda: thermal_like(n=300),
}

FAMILIES = {
    "fanin": lambda a: FanInSolver(a, FanInOptions(nranks=4)),
    "fanboth": lambda a: FanBothSolver(a, FanBothOptions(nranks=4)),
    "multifrontal": lambda a: MultifrontalSolver(
        a, MultifrontalOptions(nranks=4)),
    "pastix_like": lambda a: PastixLikeSolver(a, PastixOptions(nranks=4)),
}


@pytest.fixture(scope="module", params=sorted(MATRICES))
def reference(request):
    """Matrix plus the fan-out factor it must be reproduced against."""
    a = MATRICES[request.param]()
    fan_out = SymPackSolver(a, SolverOptions(nranks=4, offload=CPU_ONLY))
    fan_out.factorize()
    return a, fan_out.storage.to_sparse_factor().toarray()


@pytest.mark.parametrize("family", sorted(FAMILIES))
def test_factor_matches_fanout_core(reference, family):
    a, l_ref = reference
    solver = FAMILIES[family](a)
    solver.factorize()
    l_fam = solver.storage.to_sparse_factor().toarray()
    assert np.allclose(l_fam, l_ref, atol=1e-12), (
        f"{family} factor diverges from fan-out on {a.name}"
    )


@pytest.mark.parametrize("family", sorted(FAMILIES))
def test_solve_agrees_with_fanout_core(reference, family):
    a, _ = reference
    rng = np.random.default_rng(11)
    b = rng.standard_normal(a.n)
    fan_out = SymPackSolver(a, SolverOptions(nranks=4, offload=CPU_ONLY))
    fan_out.factorize()
    x_ref, _ = fan_out.solve(b)
    solver = FAMILIES[family](a)
    solver.factorize()
    x, _ = solver.solve(b)
    assert np.allclose(x, x_ref, atol=1e-9)
    assert solver.residual_norm(x, b) < 1e-9
