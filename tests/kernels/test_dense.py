"""Unit tests for the dense BLAS-3/LAPACK kernel wrappers."""

import numpy as np
import pytest

from repro.kernels import gemm_nt, potrf, syrk_lower, trsm_right_lower_trans
from repro.sparse import NotPositiveDefiniteError


def spd(n, seed=0):
    rng = np.random.default_rng(seed)
    g = rng.standard_normal((n, n))
    return g @ g.T + n * np.eye(n)


class TestPotrf:
    def test_reconstructs_input(self):
        a = spd(8)
        l = potrf(a)
        assert np.allclose(l @ l.T, a)

    def test_lower_triangular(self):
        l = potrf(spd(6))
        assert np.allclose(l, np.tril(l))

    def test_raises_on_indefinite(self):
        a = np.array([[1.0, 2.0], [2.0, 1.0]])  # indefinite
        with pytest.raises(NotPositiveDefiniteError):
            potrf(a)

    def test_1x1(self):
        assert np.allclose(potrf(np.array([[4.0]])), [[2.0]])


class TestTrsm:
    def test_solves_block_equation(self, rng):
        """B = X L^T must hold after X = trsm(B, L)."""
        l = potrf(spd(5, seed=1))
        b = rng.standard_normal((7, 5))
        x = trsm_right_lower_trans(b, l)
        assert np.allclose(x @ l.T, b)

    def test_output_contiguous(self, rng):
        l = potrf(spd(4, seed=2))
        x = trsm_right_lower_trans(rng.standard_normal((3, 4)), l)
        assert x.flags["C_CONTIGUOUS"]

    def test_identity_diag(self, rng):
        b = rng.standard_normal((6, 3))
        assert np.allclose(trsm_right_lower_trans(b, np.eye(3)), b)


class TestSyrk:
    def test_matches_explicit_product(self, rng):
        a = rng.standard_normal((5, 3))
        assert np.allclose(syrk_lower(a), a @ a.T)

    def test_result_symmetric_psd(self, rng):
        a = rng.standard_normal((6, 4))
        s = syrk_lower(a)
        assert np.allclose(s, s.T)
        assert np.linalg.eigvalsh(s).min() >= -1e-12


class TestGemm:
    def test_matches_explicit_product(self, rng):
        a = rng.standard_normal((4, 3))
        b = rng.standard_normal((5, 3))
        assert np.allclose(gemm_nt(a, b), a @ b.T)

    def test_shapes(self, rng):
        out = gemm_nt(rng.standard_normal((2, 7)), rng.standard_normal((9, 7)))
        assert out.shape == (2, 9)


class TestKernelsCompose:
    def test_blocked_cholesky_via_kernels(self, rng):
        """A 2x2 blocked Cholesky using exactly the four kernels must
        reproduce LAPACK's answer — the core supernodal recursion."""
        n1, n2 = 4, 5
        a = spd(n1 + n2, seed=3)
        a11, a21, a22 = a[:n1, :n1], a[n1:, :n1], a[n1:, n1:]
        l11 = potrf(a11)
        l21 = trsm_right_lower_trans(a21, l11)
        a22_updated = a22 - syrk_lower(l21)
        l22 = potrf(a22_updated)
        full = np.linalg.cholesky(a)
        assert np.allclose(l11, full[:n1, :n1])
        assert np.allclose(l21, full[n1:, :n1])
        assert np.allclose(l22, full[n1:, n1:])
