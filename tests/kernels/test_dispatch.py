"""Unit tests for declarative kernel dispatch and the batching executor."""

import numpy as np
import pytest

from repro.core import CPU_ONLY, FactorStorage, build_factor_graph, make_map
from repro.core.tracing import ExecutionTrace
from repro.kernels import dense as kd
from repro.kernels.dispatch import (
    KERNEL_OPS,
    ExecContext,
    KernelCall,
    KernelExecutor,
    flat_index,
)
from repro.sparse import random_spd
from repro.symbolic import analyze


class TestKernelCall:
    def test_frozen(self):
        call = KernelCall("potrf_diag", (3,))
        with pytest.raises(AttributeError):
            call.op = "other"

    def test_default_args_empty(self):
        assert KernelCall("noop").args == ()

    def test_all_ops_have_handlers(self):
        graph_ops = {"noop", "potrf_diag", "trsm_block", "panel_factor",
                     "syrk_sub", "gemm_sub", "multi_update", "apply_panel",
                     "axpy_sub", "frontal", "trsv", "gemv_fwd", "gemv_bwd"}
        assert graph_ops == set(KERNEL_OPS)


class TestExecContext:
    def test_scratch_array_get_or_create(self):
        ctx = ExecContext()
        a = ctx.scratch_array(("agg", 0, 1), (2, 3))
        assert a.shape == (2, 3) and not a.any()
        a[0, 0] = 5.0
        assert ctx.scratch_array(("agg", 0, 1), (2, 3)) is a

    def test_fresh_run_zeroes_scratch_in_place(self):
        ctx = ExecContext()
        a = ctx.scratch_array("k", (2, 2))
        a[:] = 7.0
        ctx.transient["x"] = object()
        ctx.fresh_run()
        assert not a.any()
        assert ctx.scratch["k"] is a  # same array, graphs keep their refs
        assert not ctx.transient

    def test_resolve_rhs_and_scratch(self):
        rhs = np.zeros((4, 1))
        ctx = ExecContext(rhs=rhs)
        assert ctx.resolve(("rhs",)) is rhs
        arr = ctx.scratch_array("k", (1, 1))
        assert ctx.resolve(("scratch", "k")) is arr

    def test_resolve_unknown_ref_raises(self):
        with pytest.raises(KeyError):
            ExecContext().resolve(("nope", 0))


def _sub_calls(seed=0, n_targets=3, calls_per=4, shape=(4, 4)):
    """A pile of gemm_sub calls scattering into named scratch targets."""
    rng = np.random.default_rng(seed)
    ctx = ExecContext()
    calls = []
    flat = flat_index(np.arange(shape[0]), np.arange(shape[1]), shape[1])
    for t in range(n_targets):
        ctx.scratch_array(("tgt", t), shape)
        for c in range(calls_per):
            a = ctx.scratch_array(("a", t, c), shape)
            b = ctx.scratch_array(("b", t, c), shape)
            a[:] = rng.standard_normal(shape)
            b[:] = rng.standard_normal(shape)
            calls.append(KernelCall("gemm_sub", (
                ("scratch", ("tgt", t)), ("scratch", ("a", t, c)),
                ("scratch", ("b", t, c)), flat, -1.0)))
    return ctx, calls


class _FakeTask:
    def __init__(self, kernel, op="GEMM", flops=10.0):
        self.kernel = kernel
        self.op = op
        self.flops = flops


class TestKernelExecutor:
    def test_flush_matches_eager_execution(self):
        ctx_b, calls = _sub_calls(seed=9)
        ex = KernelExecutor(ctx_b)
        for c in calls:
            ex.submit(_FakeTask(c), rank=0, device="cpu")
        ex.flush()
        ctx_e, _ = _sub_calls(seed=9)  # identical inputs, eager path
        for c in calls:
            KERNEL_OPS[c.op](ctx_e, *c.args)
        for t in range(3):
            assert np.array_equal(ctx_b.scratch[("tgt", t)],
                                  ctx_e.scratch[("tgt", t)])

    def test_consecutive_same_op_calls_stacked(self):
        ctx, calls = _sub_calls(seed=1)
        ex = KernelExecutor(ctx)
        for c in calls:
            ex.submit(_FakeTask(c), rank=0, device="cpu")
        ex.flush()
        assert ex.stats.calls == len(calls)
        assert ex.stats.batches == 1  # one maximal run of gemm_sub
        assert ex.stats.stacked == len(calls)

    def test_mixed_ops_split_batches(self):
        ctx, calls = _sub_calls(seed=2, n_targets=1, calls_per=2)
        ex = KernelExecutor(ctx)
        ex.submit(_FakeTask(calls[0]), 0, "cpu")
        ex.submit(_FakeTask(KernelCall("noop"), op="NOOP"), 0, "cpu")
        ex.submit(_FakeTask(calls[1]), 0, "cpu")
        ex.flush()
        assert ex.stats.batches == 3
        assert ex.stats.stacked == 0  # no run longer than one call

    def test_trace_records_at_submission(self):
        trace = ExecutionTrace()
        ex = KernelExecutor(ExecContext(), trace=trace)
        ex.submit(_FakeTask(KernelCall("noop"), op="POTRF", flops=5.0),
                  rank=1, device="gpu")
        assert trace.ops.calls[(1, "POTRF", "gpu")] == 1
        assert trace.ops.flops[(1, "POTRF", "gpu")] == 5.0

    def test_flush_clears_pending(self):
        ex = KernelExecutor(ExecContext())
        ex.submit(_FakeTask(KernelCall("noop")), 0, "cpu")
        ex.flush()
        ex.flush()  # idempotent on empty queue
        assert ex.stats.calls == 1

    def test_graph_carries_no_closures(self):
        """Every task of a built factor graph is a declarative KernelCall."""
        a = random_spd(25, density=0.2, seed=5)
        an = analyze(a)
        st = FactorStorage(an)
        g = build_factor_graph(an, st, make_map(2), CPU_ONLY)
        for t in g.tasks:
            assert isinstance(t.kernel, KernelCall)
            assert t.kernel.op in KERNEL_OPS
            assert not callable(getattr(t, "run", None))

    def test_batched_factorization_matches_scipy(self, rng):
        """Deferred batched execution is numerically exact, not approximate."""
        a = random_spd(30, density=0.2, seed=8)
        an = analyze(a)
        st = FactorStorage(an)
        g = build_factor_graph(an, st, make_map(1), CPU_ONLY)
        ex = KernelExecutor(g.context)
        # Submit in a topological order (Kahn), as the engine would.
        indeg = [t.deps for t in g.tasks]
        consumers = {t.tid: list(t.local_consumers) for t in g.tasks}
        ready = [t.tid for t in g.tasks if indeg[t.tid] == 0]
        while ready:
            tid = ready.pop(0)
            ex.submit(g.tasks[tid], rank=0, device="cpu")
            for c in consumers[tid]:
                indeg[c] -= 1
                if indeg[c] == 0:
                    ready.append(c)
        ex.flush()
        l = np.tril(st.to_sparse_factor().toarray())
        expected = np.linalg.cholesky(an.a_perm.to_dense())
        assert np.allclose(l, expected, atol=1e-10)


class TestHandlers:
    def test_potrf_and_trsm_handlers(self):
        an = analyze(random_spd(20, density=0.3, seed=2))
        st = FactorStorage(an)
        ctx = ExecContext(storage=st)
        diag0 = st.diag_block(0).copy()
        KERNEL_OPS["potrf_diag"](ctx, 0)
        assert np.allclose(st.diag_block(0), np.tril(kd.potrf(diag0)))

    def test_trsv_forward_backward_roundtrip(self, rng):
        an = analyze(random_spd(20, density=0.3, seed=2))
        st = FactorStorage(an)
        ctx = ExecContext(storage=st)
        KERNEL_OPS["potrf_diag"](ctx, 0)
        part = an.supernodes
        fc, lc = part.first_col(0), part.last_col(0)
        w = lc - fc + 1
        rhs = rng.standard_normal((an.n, 1))
        orig = rhs[fc:lc + 1].copy()
        ctx2 = ExecContext(storage=st, rhs=rhs)
        KERNEL_OPS["trsv"](ctx2, 0, fc, lc, True)
        l = st.diag_block(0)
        assert np.allclose(np.tril(l) @ rhs[fc:lc + 1], orig, atol=1e-12)
        assert w >= 1
