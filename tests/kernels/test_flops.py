"""Unit tests for flop-count formulas."""

import pytest

from repro.kernels import (
    gemm_flops,
    gemv_flops,
    kernel_flops,
    potrf_flops,
    syrk_flops,
    trsm_flops,
    trsv_flops,
)


class TestFormulas:
    def test_potrf_cubic(self):
        assert potrf_flops(10) == pytest.approx(10**3 / 3 + 50)
        assert potrf_flops(20) / potrf_flops(10) > 7  # ~cubic growth

    def test_trsm(self):
        assert trsm_flops(4, 3) == 36.0

    def test_syrk(self):
        assert syrk_flops(3, 5) == 60.0

    def test_gemm(self):
        assert gemm_flops(2, 3, 4) == 48.0

    def test_trsv(self):
        assert trsv_flops(5) == 25.0
        assert trsv_flops(5, nrhs=2) == 50.0

    def test_gemv(self):
        assert gemv_flops(4, 5) == 40.0


class TestDispatch:
    def test_all_ops(self):
        assert kernel_flops("POTRF", (8,)) == potrf_flops(8)
        assert kernel_flops("TRSM", (4, 3)) == trsm_flops(4, 3)
        assert kernel_flops("SYRK", (3, 5)) == syrk_flops(3, 5)
        assert kernel_flops("GEMM", (2, 3, 4)) == gemm_flops(2, 3, 4)

    def test_unknown_raises(self):
        with pytest.raises(ValueError):
            kernel_flops("AXPY", (3,))

    def test_all_nonnegative(self):
        for op, dims in [("POTRF", (1,)), ("TRSM", (0, 5)),
                         ("SYRK", (0, 0)), ("GEMM", (1, 1, 1))]:
            assert kernel_flops(op, dims) >= 0
