"""Unit tests for the machine performance model."""

import pytest

from repro.machine import perlmutter


class TestMachineModel:
    def test_gpu_faster_for_large_kernels(self):
        m = perlmutter()
        big = 1e10  # 10 Gflop
        assert m.gpu_time(big) < m.cpu_time(big)

    def test_cpu_faster_for_tiny_kernels(self):
        m = perlmutter()
        tiny = 1e3
        assert m.cpu_time(tiny) < m.gpu_time(tiny)

    def test_crossover_exists(self):
        """There is a flop count where GPU and CPU times cross."""
        m = perlmutter()
        lo, hi = 1e2, 1e12
        assert m.cpu_time(lo) < m.gpu_time(lo)
        assert m.cpu_time(hi) > m.gpu_time(hi)

    def test_pcie_time_monotone(self):
        m = perlmutter()
        assert m.pcie_time(1 << 20) < m.pcie_time(1 << 24)

    def test_with_overrides(self):
        m = perlmutter().with_overrides(cpu_flops=1e9)
        assert m.cpu_flops == 1e9
        assert m.gpu_flops == perlmutter().gpu_flops  # untouched

    def test_frozen(self):
        m = perlmutter()
        with pytest.raises(Exception):
            m.cpu_flops = 1.0  # type: ignore[misc]

    def test_perlmutter_shape(self):
        m = perlmutter()
        assert m.gpus_per_node == 4
        assert m.cores_per_node == 64
        assert m.nics_per_node == 4
        # A100 FP64 is ~275x a Milan core.
        assert 100 < m.gpu_flops / m.cpu_flops < 1000
