"""Unit tests of the per-(rank, space) memory ledger."""

import pytest

from repro.memory import MemoryBudgetExceeded, MemoryLedger
from repro.pgas.network import MemorySpace


class TestChargeRelease:
    def test_live_peak_and_counts(self):
        led = MemoryLedger()
        led.charge(0, "host", 100)
        led.charge(0, "host", 50)
        led.release(0, "host", 120)
        assert led.live(0, "host") == 30
        assert led.peak(0, "host") == 150
        assert led.allocs(0, "host") == 2

    def test_accounts_are_independent(self):
        led = MemoryLedger()
        led.charge(0, "host", 10)
        led.charge(1, "host", 20)
        led.charge(0, "device", 40)
        assert led.live(0) == 50
        assert led.live(space="host") == 30
        assert led.live(1, "host") == 20
        assert led.live() == 70

    def test_enum_and_string_space_are_one_account(self):
        led = MemoryLedger()
        led.charge(0, MemorySpace.DEVICE, 64)
        assert led.live(0, "device") == 64
        led.release(0, "device", 64)
        assert led.live(0, MemorySpace.DEVICE) == 0

    def test_label_accounting(self):
        led = MemoryLedger()
        led.charge(0, "host", 100, label="factor")
        led.charge(0, "host", 40, label="scratch")
        led.release(0, "host", 100, label="factor")
        assert led.live_label("factor") == 0
        assert led.live_label("scratch") == 40

    def test_negative_and_over_release_raise(self):
        led = MemoryLedger()
        with pytest.raises(ValueError):
            led.charge(0, "host", -1)
        with pytest.raises(ValueError):
            led.release(0, "host", -1)
        led.charge(0, "host", 10)
        with pytest.raises(ValueError):
            led.release(0, "host", 11)


class TestBudgets:
    def test_charge_past_budget_raises_without_mutation(self):
        led = MemoryLedger()
        led.set_budget(0, "device", 100)
        led.charge(0, "device", 80)
        with pytest.raises(MemoryBudgetExceeded):
            led.charge(0, "device", 21)
        assert led.live(0, "device") == 80
        assert led.allocs(0, "device") == 1
        assert led.remaining(0, "device") == 20

    def test_ensure_budget_min_semantics(self):
        led = MemoryLedger()
        led.ensure_budget(0, "device", 100)
        led.ensure_budget(0, "device", 10**9)   # looser: ignored
        assert led.budget(0, "device") == 100
        led.ensure_budget(0, "device", 50)      # tighter: wins
        assert led.budget(0, "device") == 50

    def test_clear_budget(self):
        led = MemoryLedger()
        led.set_budget(0, "host", 10)
        led.set_budget(0, "host", None)
        assert led.remaining(0, "host") is None
        led.charge(0, "host", 10**9)            # unbounded again


class TestSnapshot:
    def test_snapshot_is_frozen_view(self):
        led = MemoryLedger()
        led.charge(1, "host", 100, label="factor")
        snap = led.snapshot()
        led.charge(1, "host", 900, label="factor")
        assert snap.live() == 100
        assert led.snapshot().live() == 1000

    def test_snapshot_filters_and_labels(self):
        led = MemoryLedger()
        led.charge(0, "host", 100, label="factor")
        led.charge(0, "device", 70, label="device")
        snap = led.snapshot()
        assert snap.live("host") == 100
        assert snap.live("device") == 70
        assert snap.peak() == 170
        assert snap.allocs() == 2
        assert snap.live_label("factor") == 100

    def test_format_report_lists_accounts(self):
        led = MemoryLedger()
        led.set_budget(0, "device", 1000)
        led.charge(0, "host", 100, label="factor")
        report = led.snapshot().format_report()
        assert "rank 0" in report
        assert "factor" in report
        assert "budget=1,000" in report

    def test_empty_report(self):
        assert "(no accounts charged)" in MemoryLedger(
            ).snapshot().format_report()
