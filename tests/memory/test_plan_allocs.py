"""Warm plan replays make zero new allocations.

The acceptance bar of the compiled-plan subsystem's memory story: after
the *first* warm refactorization populates the plan arena, every further
replay reuses resident buffers — the ledger's allocation count and the
pool's take count both stay flat (delta == 0), and the arena drains back
to the pool on close.
"""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.baselines.pastix_like import PastixLikeSolver, PastixOptions
from repro.core.solver import SolverOptions, SymPackSolver
from repro.sparse import SymmetricCSC, random_spd
from repro.variants import (
    FanBothOptions,
    FanBothSolver,
    FanInOptions,
    FanInSolver,
    MultifrontalOptions,
    MultifrontalSolver,
)

FAMILIES = [
    (SymPackSolver, SolverOptions),
    (FanInSolver, FanInOptions),
    (FanBothSolver, FanBothOptions),
    (MultifrontalSolver, MultifrontalOptions),
    (PastixLikeSolver, PastixOptions),
]


def _shifted(a: SymmetricCSC, shift: float) -> SymmetricCSC:
    eye = sp.identity(a.n, format="csc")
    return SymmetricCSC.from_any(
        a.lower + a.lower.T - sp.diags(a.lower.diagonal()) + shift * eye)


@pytest.mark.parametrize("solver_cls,options_cls", FAMILIES,
                         ids=lambda v: getattr(v, "__name__", None))
def test_warm_replay_zero_allocator_growth(solver_cls, options_cls):
    """Replays after the first warm run: alloc delta == take delta == 0."""
    a = random_spd(60, density=0.15, seed=3)
    solver = solver_cls(a, options_cls(nranks=2, parallelism=4,
                                       plan_mode="on"))
    solver.factorize()                      # record + compile
    solver.update_values(_shifted(a, 0.2))
    solver.factorize()                      # warm run 1: arena faults in
    ledger, pool = solver.session.ledger, solver.session.pool
    for i in range(3):                      # warm runs 2..4: fully resident
        allocs0, takes0 = ledger.allocs(space="host"), pool.takes
        solver.update_values(_shifted(a, 0.3 + 0.1 * i))
        solver.factorize()
        assert ledger.allocs(space="host") - allocs0 == 0
        assert pool.takes - takes0 == 0
    solver.close()
    assert ledger.live() == 0


def test_warm_solve_zero_allocator_growth():
    """Warm solve replays of a seen rhs width allocate nothing new."""
    a = random_spd(60, density=0.15, seed=3)
    solver = SymPackSolver(a, SolverOptions(nranks=2, parallelism=4,
                                            plan_mode="on"))
    solver.factorize()
    rhs = np.linspace(-1.0, 1.0, a.n * 2).reshape(a.n, 2)
    solver.solve(rhs)                       # record + compile solve plans
    solver.solve(rhs)                       # warm run 1: arena faults in
    ledger, pool = solver.session.ledger, solver.session.pool
    allocs0, takes0 = ledger.allocs(space="host"), pool.takes
    x_warm, _ = solver.solve(rhs)
    assert ledger.allocs(space="host") - allocs0 == 0
    assert pool.takes - takes0 == 0
    assert np.all(np.isfinite(x_warm))
    solver.close()


def test_arena_retire_returns_buffers_to_pool():
    """retire() hands every retained buffer back to the pool."""
    from repro.memory import BufferPool
    from repro.plans import PlanArena

    pool = BufferPool()
    arena = PlanArena(pool)
    a1 = arena.take((4, 4), label="kernel")
    arena.give(a1)
    a2 = arena.take((4, 4), label="kernel")  # cache hit: same buffer
    assert a2 is a1
    assert arena.hits == 1 and arena.faults == 1
    arena.give(a2)
    drained = arena.retire()
    assert drained == 1
    assert arena.retained == 0
    # The drained buffer is back on the pool's free list.
    reuses0 = pool.reuses
    pool.take((4, 4), label="kernel")
    assert pool.reuses == reuses0 + 1


def test_arena_retire_with_outstanding_buffer_raises():
    from repro.memory import BufferPool
    from repro.plans import PlanArena

    arena = PlanArena(BufferPool())
    arena.take((2, 2), label="kernel")
    with pytest.raises(RuntimeError, match="handed out"):
        arena.retire()
