"""Unit tests of the ledger-charged buffer pool."""

import numpy as np
import pytest

from repro.memory import BufferPool, MemoryBudgetExceeded, MemoryLedger


class TestTakeGive:
    def test_take_charges_ledger(self):
        pool = BufferPool()
        arr = pool.take((10, 10), label="factor")
        assert arr.shape == (10, 10)
        assert pool.ledger.live(0, "host") == 800
        assert pool.live_bytes("factor") == 800
        assert pool.outstanding() == 1
        assert pool.owns(arr)

    def test_give_releases_but_caches(self):
        pool = BufferPool()
        arr = pool.take((10,))
        pool.give(arr)
        # Cached arrays are not live: close-to-zero holds while the pool
        # retains memory for reuse.
        assert pool.ledger.live() == 0
        assert pool.cached_bytes == 80
        assert not pool.owns(arr)

    def test_reuse_returns_same_array_zeroed(self):
        pool = BufferPool()
        a = pool.take((5, 5))
        a[:] = 7.0
        pool.give(a)
        b = pool.take((5, 5))
        assert b is a                       # free-list hit
        assert pool.reuses == 1
        # Bit-identity contract: reused arrays read as np.zeros.
        assert np.array_equal(b, np.zeros((5, 5)))

    def test_distinct_shape_or_dtype_not_shared(self):
        pool = BufferPool()
        a = pool.take((4,))
        pool.give(a)
        b = pool.take((4,), dtype=np.float32)
        assert b is not a
        assert pool.reuses == 0

    def test_give_unowned_raises(self):
        pool = BufferPool()
        with pytest.raises(KeyError):
            pool.give(np.zeros(3))

    def test_double_give_raises(self):
        pool = BufferPool()
        arr = pool.take((3,))
        pool.give(arr)
        with pytest.raises(KeyError):
            pool.give(arr)

    def test_zero_false_skips_clear(self):
        pool = BufferPool()
        a = pool.take((6,))
        a[:] = 3.0
        pool.give(a)
        b = pool.take((6,), zero=False)
        assert b is a
        assert np.array_equal(b, np.full(6, 3.0))   # left dirty by design


class TestBudgetAndTrim:
    def test_budget_violation_allocates_nothing(self):
        ledger = MemoryLedger()
        ledger.set_budget(0, "host", 100)
        pool = BufferPool(ledger=ledger)
        with pytest.raises(MemoryBudgetExceeded):
            pool.take((100,))
        assert pool.takes == 0
        assert pool.outstanding() == 0
        assert ledger.live() == 0

    def test_trim_drops_cache(self):
        pool = BufferPool()
        pool.give(pool.take((8,)))
        assert pool.trim() == 64
        assert pool.cached_bytes == 0
        fresh = pool.take((8,))
        assert pool.reuses == 0
        assert fresh.shape == (8,)

    def test_shared_ledger_accounts_by_rank(self):
        ledger = MemoryLedger()
        p0 = BufferPool(ledger=ledger, rank=0)
        p1 = BufferPool(ledger=ledger, rank=1)
        p0.take((10,))
        p1.take((20,))
        assert ledger.live(0, "host") == 80
        assert ledger.live(1, "host") == 160
