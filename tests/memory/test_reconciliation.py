"""End-to-end memory reconciliation through the real solvers.

The tentpole acceptance criterion: after a solver closes, live bytes in
every (rank, space) ledger account return to zero while peak watermarks
survive — reported from the same :class:`MemoryLedger` everywhere
(``FactorizeInfo.mem``, the execution trace, ``--mem-report``).
"""

import numpy as np
import pytest

from repro.core.solver import SolverOptions, SymPackSolver
from repro.sparse.generators import random_spd
from repro.variants.fanboth import FanBothOptions, FanBothSolver
from repro.variants.fanin import FanInOptions, FanInSolver
from repro.variants.multifrontal import MultifrontalOptions, MultifrontalSolver


def spd(n=60, seed=3):
    return random_spd(n, density=0.15, seed=seed)


SOLVERS = [
    (SymPackSolver, SolverOptions),
    (FanInSolver, FanInOptions),
    (FanBothSolver, FanBothOptions),
    (MultifrontalSolver, MultifrontalOptions),
]


class TestLiveReturnsToZero:
    @pytest.mark.parametrize("solver_cls,options_cls", SOLVERS,
                             ids=[c.__name__ for c, _ in SOLVERS])
    def test_factorize_solve_close(self, solver_cls, options_cls):
        a = spd()
        solver = solver_cls(a, options_cls(nranks=2))
        solver.factorize()
        rhs = np.linspace(-1.0, 1.0, a.n).reshape(a.n, 1)
        x, _ = solver.solve(rhs)
        ledger = solver.session.ledger
        assert ledger.live() > 0          # factors + rhs are charged
        solver.close()
        assert ledger.live() == 0
        assert ledger.peak() > 0          # watermarks survive reclamation

    def test_close_is_idempotent_and_final(self):
        a = spd()
        solver = SymPackSolver(a, SolverOptions(nranks=2))
        solver.factorize()
        solver.close()
        solver.close()
        with pytest.raises(RuntimeError):
            solver.factorize()
        with pytest.raises(RuntimeError):
            solver.solve(np.ones(a.n))


class TestRefactorizeBaseline:
    @pytest.mark.parametrize("solver_cls,options_cls", SOLVERS,
                             ids=[c.__name__ for c, _ in SOLVERS])
    def test_live_bytes_stable_across_replays(self, solver_cls, options_cls):
        # The scratch leak fix: repeated factorizations replay the graph
        # through pool epochs, so live bytes after run k equal live bytes
        # after run 1 — no grow-only scratch.
        a = spd()
        solver = solver_cls(a, options_cls(nranks=2))
        solver.factorize()
        baseline = solver.session.ledger.live()
        for _ in range(3):
            solver.factorize()
            assert solver.session.ledger.live() == baseline
        solver.close()
        assert solver.session.ledger.live() == 0

    def test_scratch_reused_across_replays(self):
        # Fan-in registers aggregate scratch at build time; a replay must
        # pop it from the pool's free list instead of re-allocating.
        a = spd()
        solver = FanInSolver(a, FanInOptions(nranks=2))
        solver.factorize()
        solver.factorize()
        assert solver.session.pool.reuses > 0

    def test_replay_is_bit_identical(self):
        a = spd()
        rhs = np.linspace(-1.0, 1.0, a.n).reshape(a.n, 1)
        solver = SymPackSolver(a, SolverOptions(nranks=2))
        solver.factorize()
        x1, _ = solver.solve(rhs)
        solver.factorize()
        x2, _ = solver.solve(rhs)
        assert np.array_equal(x1, x2)


class TestSnapshotsFlow:
    def test_factorize_info_carries_in_run_snapshot(self):
        a = spd()
        solver = SymPackSolver(a, SolverOptions(nranks=2))
        fact = solver.factorize()
        assert fact.mem.accounts                   # non-empty snapshot
        assert fact.mem.live_label("factor") > 0   # factors live in-run
        assert fact.mem.peak("host") > 0

    def test_trace_watermarks_match_ledger(self):
        a = spd()
        solver = SymPackSolver(a, SolverOptions(nranks=2))
        solver.factorize()
        live, peak = solver.trace.memory_watermarks()
        snap = solver.session.ledger.snapshot()
        for acct in snap.accounts:
            key = (acct.rank, acct.space)
            assert peak.get(key, 0) == acct.peak
        solver.close()

    def test_shared_ledger_injection(self):
        # A caller-owned ledger observes everything the solver allocates.
        from repro.memory import MemoryLedger

        ledger = MemoryLedger()
        a = spd()
        solver = SymPackSolver(a, SolverOptions(nranks=2), ledger=ledger)
        solver.factorize()
        assert ledger.live_label("factor") > 0
        solver.close()
        assert ledger.live() == 0
