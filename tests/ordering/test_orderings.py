"""Tests of the fill-reducing orderings (RCM, AMD, ND, Scotch-like)."""

import numpy as np
import pytest

from repro.ordering import (
    ORDERINGS,
    compute_ordering,
    is_permutation,
    minimum_degree_order,
    nested_dissection_order,
    NDOptions,
)
from repro.sparse import (
    AdjacencyGraph,
    SymmetricCSC,
    bone_like,
    grid_laplacian_2d,
    random_spd,
    tridiagonal_spd,
)
from repro.symbolic import SymbolicL

ALL_METHODS = sorted(ORDERINGS)


@pytest.mark.parametrize("method", ALL_METHODS)
class TestAllOrderingsAreValid:
    def test_valid_permutation(self, method, lap2d):
        perm = compute_ordering(lap2d, method)
        assert is_permutation(perm.perm)

    def test_handles_corner_cases(self, method, corner_case):
        perm = compute_ordering(corner_case, method)
        assert is_permutation(perm.perm)

    def test_disconnected_graph(self, method):
        a = SymmetricCSC.from_any(np.diag([1.0, 2.0, 3.0, 4.0]))
        perm = compute_ordering(a, method)
        assert is_permutation(perm.perm)


class TestRegistry:
    def test_unknown_method_rejected(self, lap2d):
        with pytest.raises(ValueError, match="unknown ordering"):
            compute_ordering(lap2d, "does-not-exist")

    def test_natural_is_identity(self, lap2d):
        perm = compute_ordering(lap2d, "natural")
        assert np.array_equal(perm.perm, np.arange(lap2d.n))


class TestFillReduction:
    """Orderings must beat the natural ordering on structured problems."""

    def _fill(self, a, method):
        perm = compute_ordering(a, method)
        return SymbolicL(a.permuted(perm.perm).lower).nnz

    @pytest.mark.parametrize("method", ["amd", "nd", "scotch_like"])
    def test_reduces_fill_on_grid(self, method):
        a = grid_laplacian_2d(14, 14)
        assert self._fill(a, method) < self._fill(a, "natural")

    @pytest.mark.parametrize("method", ["amd", "nd", "scotch_like"])
    def test_reduces_fill_on_bone(self, method):
        a = bone_like(scale=8, seed=2)
        assert self._fill(a, method) <= self._fill(a, "natural")

    def test_tridiagonal_needs_no_reordering_benefit(self):
        # Natural ordering of a tridiagonal matrix is already fill-free;
        # good orderings must not blow it up by more than a small factor.
        a = tridiagonal_spd(50)
        natural = self._fill(a, "natural")
        assert natural == 99  # 50 diag + 49 sub-diagonal
        assert self._fill(a, "scotch_like") <= 2 * natural


class TestMinimumDegree:
    def test_star_center_eliminated_near_last(self):
        # Star graph: the center has maximal degree, so min-degree keeps it
        # until only leaves of equal degree remain (index ties then allow
        # the center at position n-2).
        n = 8
        a = np.eye(n) * 4
        a[0, 1:] = a[1:, 0] = -0.5
        g = AdjacencyGraph.from_symmetric(SymmetricCSC.from_any(a))
        order = minimum_degree_order(g)
        assert int(np.flatnonzero(order == 0)[0]) >= n - 2

    def test_produces_no_fill_on_tree(self):
        # Elimination of leaves first yields zero fill on any tree.
        a = tridiagonal_spd(20)
        g = AdjacencyGraph.from_symmetric(a)
        order = minimum_degree_order(g)
        perm_a = a.permuted(order)
        assert SymbolicL(perm_a.lower).fill_in() == 0


class TestNestedDissection:
    def test_separator_ordered_last_on_grid(self):
        a = grid_laplacian_2d(9, 9)
        order = nested_dissection_order(a, NDOptions(leaf_size=8))
        # The last few eliminated vertices must form a separator: removing
        # them disconnects the rest into >= 2 components.
        import scipy.sparse.csgraph as csgraph
        sep = set(order[-9:].tolist())
        keep = np.array([v for v in range(a.n) if v not in sep])
        sub = a.full()[np.ix_(keep, keep)]
        ncomp, _ = csgraph.connected_components(sub, directed=False)
        assert ncomp >= 2

    def test_leaf_size_respected_smaller_gives_same_coverage(self):
        a = grid_laplacian_2d(10, 10)
        for leaf in (4, 16, 64):
            order = nested_dissection_order(a, NDOptions(leaf_size=leaf))
            assert is_permutation(order)

    def test_random_matrix_valid(self):
        a = random_spd(80, density=0.08, seed=7)
        assert is_permutation(nested_dissection_order(a))
