"""Unit tests for permutation algebra."""

import numpy as np
import pytest

from repro.ordering import (
    Permutation,
    compose_permutations,
    identity_permutation,
    invert_permutation,
    is_permutation,
)


class TestIsPermutation:
    def test_valid(self):
        assert is_permutation(np.array([2, 0, 1]))

    def test_duplicate(self):
        assert not is_permutation(np.array([0, 0, 1]))

    def test_out_of_range(self):
        assert not is_permutation(np.array([0, 1, 3]))

    def test_wrong_ndim(self):
        assert not is_permutation(np.array([[0, 1], [1, 0]]))


class TestInvert:
    def test_inverse_property(self, rng):
        p = rng.permutation(50)
        ip = invert_permutation(p)
        assert np.array_equal(ip[p], np.arange(50))
        assert np.array_equal(p[ip], np.arange(50))

    def test_identity_self_inverse(self):
        p = identity_permutation(7)
        assert np.array_equal(invert_permutation(p), p)


class TestCompose:
    def test_identity_neutral(self, rng):
        p = rng.permutation(20)
        ident = identity_permutation(20)
        assert np.array_equal(compose_permutations(ident, p), p)
        assert np.array_equal(compose_permutations(p, ident), p)

    def test_matches_matrix_composition(self, rng):
        """compose(outer, inner) permutes like applying inner then outer."""
        n = 12
        inner = rng.permutation(n)
        outer = rng.permutation(n)
        x = rng.standard_normal(n)
        via_steps = (x[inner])[outer]
        combined = compose_permutations(outer, inner)
        assert np.allclose(x[combined], via_steps)


class TestPermutationClass:
    def test_rejects_invalid(self):
        with pytest.raises(ValueError):
            Permutation(np.array([0, 2]))

    def test_vector_roundtrip(self, rng):
        p = Permutation(rng.permutation(30))
        x = rng.standard_normal(30)
        assert np.allclose(p.undo_on_vector(p.apply_to_vector(x)), x)

    def test_equality(self):
        a = Permutation(np.array([1, 0, 2]))
        b = Permutation(np.array([1, 0, 2]))
        c = Permutation(np.array([2, 0, 1]))
        assert a == b and a != c

    def test_compose_object(self, rng):
        n = 15
        inner = Permutation(rng.permutation(n))
        outer = Permutation(rng.permutation(n))
        x = rng.standard_normal(n)
        combined = outer.compose(inner)
        assert np.allclose(combined.apply_to_vector(x),
                           outer.apply_to_vector(inner.apply_to_vector(x)))
