"""Tests of the multi-vendor device kinds (paper Sections 4.1 and 6)."""

import pytest

from repro import DeviceKind, OffloadPolicy, SolverOptions, SymPackSolver
from repro.machine import aurora, frontier, perlmutter
from repro.pgas import VendorLibraries, vendor_libraries
from repro.sparse import flan_like


class TestVendorStacks:
    def test_cuda_stack(self):
        libs = vendor_libraries(DeviceKind.CUDA)
        assert libs.blas == "cuBLAS" and libs.solver == "cuSOLVER"
        assert libs.launch_factor == 1.0

    def test_hip_stack(self):
        libs = vendor_libraries(DeviceKind.HIP)
        assert libs.blas == "rocBLAS"
        assert libs.launch_factor > 1.0

    def test_ze_stack(self):
        libs = vendor_libraries(DeviceKind.ZE)
        assert libs.blas == "oneMKL"

    def test_wildcard_resolves(self):
        """The wildcard template parameter resolves to a usable stack."""
        libs = vendor_libraries(DeviceKind.ANY)
        assert isinstance(libs, VendorLibraries)


class TestPortability:
    """The paper's portability claim: changing the device kind (and the
    machine) requires no solver-code changes and keeps numerics intact."""

    @pytest.mark.parametrize("kind,machine_factory", [
        (DeviceKind.CUDA, perlmutter),
        (DeviceKind.HIP, frontier),
        (DeviceKind.ZE, aurora),
    ])
    def test_same_code_all_vendors(self, kind, machine_factory, rng):
        a = flan_like(scale=8)
        b = rng.standard_normal(a.n)
        solver = SymPackSolver(a, SolverOptions(
            nranks=4, ranks_per_node=4, device_kind=kind,
            machine=machine_factory(),
            offload=OffloadPolicy().with_thresholds(GEMM=512, SYRK=512,
                                                    TRSM=512, POTRF=512)))
        solver.factorize()
        x, _ = solver.solve(b)
        assert solver.residual_norm(x, b) < 1e-10
        assert solver.trace.ops.total_calls("gpu") > 0

    def test_launch_factor_affects_time(self, rng):
        """Same machine rates, HIP vs CUDA kind: higher launch overhead
        makes the HIP run slower when GPU kernels are launched."""
        a = flan_like(scale=8)
        policy = OffloadPolicy().with_thresholds(GEMM=64, SYRK=64,
                                                 TRSM=64, POTRF=64)
        times = {}
        for kind in (DeviceKind.CUDA, DeviceKind.HIP):
            solver = SymPackSolver(a, SolverOptions(
                nranks=2, ranks_per_node=2, device_kind=kind,
                offload=policy))
            info = solver.factorize()
            assert solver.trace.ops.total_calls("gpu") > 0
            times[kind] = info.simulated_seconds
        assert times[DeviceKind.HIP] > times[DeviceKind.CUDA]

    def test_allocator_carries_kind(self):
        from repro.machine import perlmutter as pm
        from repro.pgas import World
        w = World(2, pm(), ranks_per_node=2, device_capacity=1 << 20,
                  device_kind=DeviceKind.HIP)
        assert all(r.device.kind is DeviceKind.HIP for r in w.ranks)


class TestVendorMachines:
    def test_frontier_shape(self):
        m = frontier()
        assert m.gpus_per_node == 8  # MI250X GCDs
        assert m.gpu_flops > perlmutter().gpu_flops

    def test_aurora_shape(self):
        m = aurora()
        assert m.gpus_per_node == 6
        assert m.kernel_launch_s > perlmutter().kernel_launch_s
