"""Unit tests for the discrete-event core."""

import pytest

from repro.pgas import EventQueue


class TestEventQueue:
    def test_time_ordering(self):
        q = EventQueue()
        log = []
        q.schedule(2.0, lambda t: log.append(("b", t)))
        q.schedule(1.0, lambda t: log.append(("a", t)))
        q.schedule(3.0, lambda t: log.append(("c", t)))
        q.run()
        assert [x[0] for x in log] == ["a", "b", "c"]
        assert q.now == 3.0

    def test_fifo_tie_break(self):
        q = EventQueue()
        log = []
        for name in "xyz":
            q.schedule(1.0, lambda t, n=name: log.append(n))
        q.run()
        assert log == ["x", "y", "z"]

    def test_events_may_schedule_events(self):
        q = EventQueue()
        log = []

        def first(t):
            log.append(("first", t))
            q.schedule(t + 1.0, lambda t2: log.append(("second", t2)))

        q.schedule(0.5, first)
        q.run()
        assert log == [("first", 0.5), ("second", 1.5)]

    def test_rejects_past_scheduling(self):
        q = EventQueue()

        def bad(t):
            q.schedule(t - 1.0, lambda _: None)

        q.schedule(5.0, bad)
        with pytest.raises(ValueError, match="before now"):
            q.run()

    def test_max_events_guard(self):
        q = EventQueue()

        def forever(t):
            q.schedule(t + 1.0, forever)

        q.schedule(0.0, forever)
        with pytest.raises(RuntimeError, match="exceeded"):
            q.run(max_events=100)

    def test_empty_run_returns_zero(self):
        q = EventQueue()
        assert q.run() == 0.0
        assert q.empty()

    def test_event_count_tracked(self):
        q = EventQueue()
        for i in range(5):
            q.schedule(float(i), lambda t: None)
        q.run()
        assert q.events_processed == 5

    def test_determinism_across_runs(self):
        def build():
            q = EventQueue()
            log = []
            for i in range(20):
                q.schedule((i * 7) % 5 * 1.0, lambda t, i=i: log.append(i))
            q.run()
            return log

        assert build() == build()

    def test_schedule_passes_args(self):
        q = EventQueue()
        log = []
        q.schedule(1.0, lambda t, a, b: log.append((t, a, b)), "x", 7)
        q.run()
        assert log == [(1.0, "x", 7)]

    def test_relative_past_tolerance_at_large_timestamps(self):
        # Regression: the old absolute 1e-15 epsilon rejected legitimate
        # float rounding once ``now`` grew large.  ``big - eps(big)`` is a
        # one-ulp rounding of an arrival computed at time ``big`` and must
        # be accepted; a genuinely past time must still raise.
        q = EventQueue()
        big = 1.0e6
        log = []

        def at_big(t):
            one_ulp_past = big - big * 1e-13   # inside relative tolerance
            q.schedule(one_ulp_past, lambda t2: log.append(t2))
            with pytest.raises(ValueError, match="before now"):
                q.schedule(big - 1.0, lambda t2: None)

        q.schedule(big, at_big)
        q.run()
        assert len(log) == 1

    def test_immediate_lane_preserves_order(self):
        # Events scheduled at exactly ``now`` bypass the heap; they must
        # still interleave correctly with heap-resident later events and
        # run in scheduling order among themselves.
        q = EventQueue()
        log = []

        def first(t):
            q.schedule(t + 1.0, lambda t2: log.append("later"))
            q.schedule(t, lambda t2: log.append("imm1"))
            q.schedule(t, lambda t2: log.append("imm2"))

        q.schedule(1.0, first)
        q.run()
        assert log == ["imm1", "imm2", "later"]

    def test_immediate_lane_defers_to_equal_time_heap_entries(self):
        # Two events pre-scheduled at t=1.0 sit in the heap.  While the
        # first runs, a new t=1.0 event must NOT jump ahead of the second
        # pre-scheduled one (seq order decides).
        q = EventQueue()
        log = []

        def first(t):
            log.append("first")
            q.schedule(t, lambda t2: log.append("new"))

        q.schedule(1.0, first)
        q.schedule(1.0, lambda t: log.append("second"))
        q.run()
        assert log == ["first", "second", "new"]

    def test_schedule_batch_matches_individual_schedules(self):
        def run_individual():
            q = EventQueue()
            log = []
            q.schedule(2.0, lambda t: log.append("late"))
            for i in range(5):
                q.schedule(1.0, lambda t, i=i: log.append(i))
            q.run()
            return log

        q = EventQueue()
        log = []
        q.schedule(2.0, lambda t: log.append("late"))
        n = q.schedule_batch(
            1.0,
            [(lambda t, i=i: log.append(i), ()) for i in range(5)])
        assert n == 5
        q.run()
        assert log == run_individual()

    def test_schedule_batch_rejects_past_times(self):
        q = EventQueue()

        def advance(t):
            with pytest.raises(ValueError, match="before now"):
                q.schedule_batch(t - 1.0, [(lambda t2: None, ())])

        q.schedule(5.0, advance)
        q.run()

    def test_pop_order_equals_plain_heap(self):
        # Property: with a mix of immediate-lane and heap traffic, the
        # executed order equals the (time, seq) order a plain heap with
        # FIFO tie-break would produce.
        q = EventQueue()
        log = []

        def emit(t, tag):
            log.append(tag)

        def storm(t, base):
            # same-time events (immediate lane or heap, depending on what
            # else is pending) plus a strictly later one
            for i in range(3):
                q.schedule(t, emit, f"{base}-imm{i}")
            q.schedule(t + 0.5, emit, f"{base}-late")

        q.schedule(0.0, storm, "a")
        q.schedule(1.0, storm, "b")
        q.schedule(1.0, storm, "c")
        q.run()
        assert log == [
            # storm a runs alone at 0.0: its same-time events use the lane
            "a-imm0", "a-imm1", "a-imm2", "a-late",
            # storms b and c share t=1.0: b's same-time events go to the
            # heap (c is still pending there) and must run after c fires
            # but before c's own same-time events (seq order)
            "b-imm0", "b-imm1", "b-imm2",
            "c-imm0", "c-imm1", "c-imm2",
            "b-late", "c-late",
        ]
