"""Unit tests for the discrete-event core."""

import pytest

from repro.pgas import EventQueue


class TestEventQueue:
    def test_time_ordering(self):
        q = EventQueue()
        log = []
        q.schedule(2.0, lambda t: log.append(("b", t)))
        q.schedule(1.0, lambda t: log.append(("a", t)))
        q.schedule(3.0, lambda t: log.append(("c", t)))
        q.run()
        assert [x[0] for x in log] == ["a", "b", "c"]
        assert q.now == 3.0

    def test_fifo_tie_break(self):
        q = EventQueue()
        log = []
        for name in "xyz":
            q.schedule(1.0, lambda t, n=name: log.append(n))
        q.run()
        assert log == ["x", "y", "z"]

    def test_events_may_schedule_events(self):
        q = EventQueue()
        log = []

        def first(t):
            log.append(("first", t))
            q.schedule(t + 1.0, lambda t2: log.append(("second", t2)))

        q.schedule(0.5, first)
        q.run()
        assert log == [("first", 0.5), ("second", 1.5)]

    def test_rejects_past_scheduling(self):
        q = EventQueue()

        def bad(t):
            q.schedule(t - 1.0, lambda _: None)

        q.schedule(5.0, bad)
        with pytest.raises(ValueError, match="before now"):
            q.run()

    def test_max_events_guard(self):
        q = EventQueue()

        def forever(t):
            q.schedule(t + 1.0, forever)

        q.schedule(0.0, forever)
        with pytest.raises(RuntimeError, match="exceeded"):
            q.run(max_events=100)

    def test_empty_run_returns_zero(self):
        q = EventQueue()
        assert q.run() == 0.0
        assert q.empty()

    def test_event_count_tracked(self):
        q = EventQueue()
        for i in range(5):
            q.schedule(float(i), lambda t: None)
        q.run()
        assert q.events_processed == 5

    def test_determinism_across_runs(self):
        def build():
            q = EventQueue()
            log = []
            for i in range(20):
                q.schedule((i * 7) % 5 * 1.0, lambda t, i=i: log.append(i))
            q.run()
            return log

        assert build() == build()
