"""Unit tests for the network / memory-kinds transfer model."""

import pytest

from repro.machine import perlmutter
from repro.pgas import MemoryKindsMode, MemorySpace, NetworkModel

HOST, DEV = MemorySpace.HOST, MemorySpace.DEVICE


def net(mode=MemoryKindsMode.NATIVE, rpn=1):
    return NetworkModel(machine=perlmutter(), ranks_per_node=rpn, mode=mode)


class TestTopology:
    def test_node_folding(self):
        n = net(rpn=4)
        assert n.node_of(0) == 0 and n.node_of(3) == 0 and n.node_of(4) == 1

    def test_same_node(self):
        n = net(rpn=2)
        assert n.same_node(0, 1)
        assert not n.same_node(1, 2)


class TestTransferTimes:
    def test_local_host_pointer_free(self):
        assert net().transfer_time(4096, 0, 0) == 0.0

    def test_monotone_in_size(self):
        n = net()
        assert (n.transfer_time(1 << 10, 0, 1)
                < n.transfer_time(1 << 20, 0, 1))

    def test_intra_node_faster_than_inter(self):
        n = net(rpn=2)
        intra = n.transfer_time(1 << 16, 0, 1)
        inter = n.transfer_time(1 << 16, 0, 2)
        assert intra < inter

    def test_native_device_equals_wire(self):
        """GDR: a device-endpoint transfer costs the same as host-host."""
        n = net(MemoryKindsMode.NATIVE)
        host = n.transfer_time(1 << 20, 0, 1, HOST, HOST)
        dev = n.transfer_time(1 << 20, 0, 1, HOST, DEV)
        assert dev == pytest.approx(host)

    def test_reference_staging_penalty(self):
        nat = net(MemoryKindsMode.NATIVE)
        ref = net(MemoryKindsMode.REFERENCE)
        for size in (1 << 12, 1 << 18, 1 << 22):
            assert (ref.transfer_time(size, 0, 1, HOST, DEV)
                    > nat.transfer_time(size, 0, 1, HOST, DEV))

    def test_reference_host_host_unaffected(self):
        """Staging only penalises device endpoints."""
        nat = net(MemoryKindsMode.NATIVE)
        ref = net(MemoryKindsMode.REFERENCE)
        assert (ref.transfer_time(1 << 16, 0, 1, HOST, HOST)
                == pytest.approx(nat.transfer_time(1 << 16, 0, 1,
                                                   HOST, HOST)))

    def test_device_device_reference_double_staged(self):
        ref = net(MemoryKindsMode.REFERENCE)
        one = ref.transfer_time(1 << 20, 0, 1, HOST, DEV)
        two = ref.transfer_time(1 << 20, 0, 1, DEV, DEV)
        assert two > one

    def test_mpi_within_20pct_of_native(self):
        nat = net(MemoryKindsMode.NATIVE)
        mpi = net(MemoryKindsMode.MPI)
        for size in (1 << 10, 1 << 16, 1 << 22):
            a = nat.transfer_time(size, 0, 1, HOST, DEV)
            b = mpi.transfer_time(size, 0, 1, HOST, DEV)
            assert abs(a - b) / a < 0.2


class TestFloodBandwidth:
    def test_saturates_to_wire_speed(self):
        n = net()
        bw = n.flood_bandwidth(4 << 20)
        assert bw == pytest.approx(perlmutter().nic_bw, rel=0.05)

    def test_latency_bound_small(self):
        n = net()
        assert n.flood_bandwidth(16) < 0.05 * perlmutter().nic_bw

    def test_monotone_nondecreasing(self):
        n = net(MemoryKindsMode.REFERENCE)
        sizes = [16 * 4**k for k in range(10)]
        bws = [n.flood_bandwidth(s) for s in sizes]
        assert all(b2 >= b1 for b1, b2 in zip(bws, bws[1:]))

    def test_paper_fig5_ratios(self):
        """native/reference ~5.9x at 8 KiB, ~2.3x above 1 MiB (Fig. 5)."""
        nat = net(MemoryKindsMode.NATIVE)
        ref = net(MemoryKindsMode.REFERENCE)
        r8k = nat.flood_bandwidth(8192) / ref.flood_bandwidth(8192)
        r4m = nat.flood_bandwidth(4 << 20) / ref.flood_bandwidth(4 << 20)
        assert 4.0 < r8k < 9.0
        assert 1.8 < r4m < 3.0
        assert r8k > r4m  # the gap shrinks with payload size


class TestRpcArrival:
    def test_local_immediate(self):
        assert net().rpc_arrival_time(0, 0, 5.0) == 5.0

    def test_remote_adds_latency(self):
        t = net().rpc_arrival_time(0, 1, 5.0)
        assert t > 5.0
