"""OOM paths: device exhaustion, engine fallback modes, budget injection.

The device allocator's capacity check is a :class:`MemoryLedger` budget,
so every test here drives the same ``DeviceOutOfMemory`` →
:class:`OomFallback` machinery the engine hits on a real out-of-memory
GPU — including deterministic injection by shrinking a shared ledger's
budget from outside the solver.
"""

import numpy as np
import pytest

from repro.core.offload import CPU_ONLY, DEFAULT_THRESHOLDS, OffloadPolicy
from repro.core.solver import SolverOptions, SymPackSolver
from repro.memory import MemoryBudgetExceeded, MemoryLedger
from repro.pgas.device import DeviceAllocator, DeviceOutOfMemory, OomFallback
from repro.pgas.global_ptr import BufferRegistry
from repro.pgas.network import MemorySpace
from repro.sparse.generators import random_spd


def make_allocator(capacity, ledger=None, rank=0):
    return DeviceAllocator(device_id=0, capacity=capacity,
                           registry=BufferRegistry(rank=rank),
                           ledger=ledger, rank=rank)


class TestDeviceAllocatorExhaustion:
    def test_exhaustion_raises_and_counts(self):
        alloc = make_allocator(capacity=800)
        alloc.allocate((50,))          # 400 bytes of float64
        alloc.allocate((50,))
        assert alloc.used == 800
        assert alloc.available == 0
        with pytest.raises(DeviceOutOfMemory):
            alloc.allocate((1,))
        assert alloc.failed_allocs == 1
        assert alloc.alloc_count == 2

    def test_failed_alloc_leaves_ledger_unchanged(self):
        alloc = make_allocator(capacity=100)
        alloc.allocate((8,))           # 64 bytes
        with pytest.raises(DeviceOutOfMemory):
            alloc.allocate((8,))
        assert alloc.used == 64
        assert alloc.available == 36
        # Exact fit still goes through after the failure.
        alloc.allocate((4, 1), dtype=np.float64)  # 32 bytes
        assert alloc.available == 4

    def test_free_returns_bytes(self):
        alloc = make_allocator(capacity=400)
        ptr = alloc.allocate((50,))
        assert alloc.available == 0
        alloc.free(ptr)
        assert alloc.used == 0
        assert alloc.available == 400
        alloc.allocate((50,))          # fits again

    def test_release_all_resets_live_keeps_peak(self):
        alloc = make_allocator(capacity=1024)
        for _ in range(3):
            alloc.allocate((16,))
        alloc.release_all()
        assert alloc.used == 0
        assert alloc.peak == 3 * 128


class TestBudgetInjection:
    def test_injected_budget_survives_capacity_redeclare(self):
        # ensure_budget has min-semantics: a tighter budget installed on
        # the shared ledger before the allocator re-declares its (huge)
        # segment capacity stays in force.
        ledger = MemoryLedger()
        ledger.set_budget(0, MemorySpace.DEVICE, 100)
        alloc = make_allocator(capacity=10**9, ledger=ledger)
        assert alloc.available == 100
        with pytest.raises(DeviceOutOfMemory):
            alloc.allocate((100,))

    def test_loose_budget_tightened_by_capacity(self):
        ledger = MemoryLedger()
        ledger.set_budget(0, MemorySpace.DEVICE, 10**9)
        alloc = make_allocator(capacity=256, ledger=ledger)
        assert ledger.budget(0, MemorySpace.DEVICE) == 256

    def test_failed_charge_mutates_nothing(self):
        ledger = MemoryLedger()
        ledger.set_budget(0, MemorySpace.DEVICE, 100)
        ledger.charge(0, MemorySpace.DEVICE, 60, label="device")
        with pytest.raises(MemoryBudgetExceeded):
            ledger.charge(0, MemorySpace.DEVICE, 50, label="device")
        assert ledger.live(0, MemorySpace.DEVICE) == 60
        assert ledger.allocs(0, MemorySpace.DEVICE) == 1
        ledger.charge(0, MemorySpace.DEVICE, 40)   # exact fit
        assert ledger.remaining(0, MemorySpace.DEVICE) == 0

    def test_budget_injection_through_session(self):
        # Shrinking one rank's device budget on the session ledger drives
        # the engine's fallback path without touching solver options.
        ledger = MemoryLedger()
        for rank in range(2):
            ledger.set_budget(rank, MemorySpace.DEVICE, 64)
        a = random_spd(60, density=0.15, seed=3)
        policy = OffloadPolicy(
            thresholds={op: 1 for op in DEFAULT_THRESHOLDS})
        solver = SymPackSolver(
            a, SolverOptions(nranks=2, offload=policy), ledger=ledger)
        fact = solver.factorize()
        assert fact.trace.gpu_fallbacks > 0
        solver.close()
        assert ledger.live() == 0


def gpu_hungry_options(mode, capacity=64):
    """Every kernel wants the GPU; the device segment fits none of them."""
    policy = OffloadPolicy(
        thresholds={op: 1 for op in DEFAULT_THRESHOLDS},
        oom_fallback=mode)
    return SolverOptions(nranks=2, offload=policy,
                         device_capacity=capacity)


class TestEngineOomFallback:
    def test_cpu_fallback_completes_bit_identically(self):
        a = random_spd(60, density=0.15, seed=3)
        rhs = np.linspace(-1.0, 1.0, a.n).reshape(a.n, 1)

        solver = SymPackSolver(a, gpu_hungry_options(OomFallback.CPU))
        fact = solver.factorize()
        assert fact.trace.gpu_fallbacks > 0
        x, _ = solver.solve(rhs)

        reference = SymPackSolver(
            a, SolverOptions(nranks=2, offload=CPU_ONLY))
        reference.factorize()
        x_ref, _ = reference.solve(rhs)
        # Numerics are host-authoritative: placement (and OOM-forced
        # re-placement) must not change a single bit of the solution.
        assert np.array_equal(x, x_ref)

    def test_raise_mode_propagates(self):
        a = random_spd(60, density=0.15, seed=3)
        solver = SymPackSolver(a, gpu_hungry_options(OomFallback.RAISE))
        with pytest.raises(DeviceOutOfMemory):
            solver.factorize()

    @pytest.mark.parametrize("mode", list(OomFallback))
    def test_ample_capacity_never_falls_back(self, mode):
        a = random_spd(60, density=0.15, seed=3)
        solver = SymPackSolver(a, gpu_hungry_options(mode, capacity=2**30))
        fact = solver.factorize()
        assert fact.trace.gpu_fallbacks == 0
