"""Delivery-edge tests of the raw RPC inbox.

The hardened transport (``repro.resilience.delivery``) builds its
guarantees on three properties of the raw queue that are easy to break
silently: duplicates execute twice (dedup lives *above* the inbox),
equal-arrival ties resolve in delivery order (determinism under
reordering faults), and a stalled inbox keeps its ``pending()`` /
``next_arrival()`` bookkeeping consistent until flushed.
"""

import math

from repro.pgas.rpc import PendingRpc, RpcInbox


def make_rpc(t, log, tag, src=1):
    return PendingRpc(arrival_time=t, fn=log.append, payload=tag,
                      src_rank=src)


class TestDuplicateArrival:
    def test_duplicate_pending_rpc_executes_twice(self):
        """The raw inbox has no dedup: the same RPC delivered twice runs
        twice.  Idempotence is the hardened transport's job (it dedups
        by sequence number before the body runs)."""
        inbox = RpcInbox(rank=0)
        log = []
        rpc = make_rpc(1.0, log, "m")
        inbox.deliver(rpc)
        inbox.deliver(rpc)
        assert inbox.delivered == 2
        assert inbox.progress(2.0) == 2
        assert log == ["m", "m"]
        assert inbox.executed == 2

    def test_duplicate_after_first_execution_runs_again(self):
        """A duplicate arriving after the original already ran is not
        remembered either — there is no execution history to consult."""
        inbox = RpcInbox(rank=0)
        log = []
        rpc = make_rpc(1.0, log, "m")
        inbox.deliver(rpc)
        assert inbox.progress(1.0) == 1
        inbox.deliver(PendingRpc(arrival_time=3.0, fn=log.append,
                                 payload="m", src_rank=1))
        assert inbox.progress(3.0) == 1
        assert log == ["m", "m"]


class TestEqualArrivalOrdering:
    def test_ties_resolve_in_delivery_order(self):
        """Two RPCs with the same arrival time execute in the order the
        network delivered them — the only deterministic tiebreak."""
        inbox = RpcInbox(rank=0)
        log = []
        inbox.deliver(make_rpc(2.0, log, "first"))
        inbox.deliver(make_rpc(2.0, log, "second"))
        inbox.deliver(make_rpc(2.0, log, "third"))
        assert inbox.progress(2.0) == 3
        assert log == ["first", "second", "third"]

    def test_tie_order_is_replayable(self):
        """The same delivery sequence replays to the same execution
        order every time (no hidden set/dict iteration)."""
        runs = []
        for _ in range(3):
            inbox = RpcInbox(rank=0)
            log = []
            for tag in ("a", "b", "c", "d"):
                inbox.deliver(make_rpc(1.0, log, tag))
            inbox.progress(1.0)
            runs.append(log)
        assert runs[0] == runs[1] == runs[2] == ["a", "b", "c", "d"]

    def test_backlog_executes_in_delivery_order_not_timestamp(self):
        """A single progress call drains every ready RPC in delivery
        order: the queue trusts the network to deliver at arrival time,
        so it never re-sorts by timestamp.  (Reordering faults therefore
        really do reorder execution — which is what the hardened
        transport's canonical kernel ordering has to absorb.)"""
        inbox = RpcInbox(rank=0)
        log = []
        inbox.deliver(make_rpc(3.0, log, "late-1"))
        inbox.deliver(make_rpc(1.0, log, "early"))
        inbox.deliver(make_rpc(3.0, log, "late-2"))
        assert inbox.progress(5.0) == 3
        assert log == ["late-1", "early", "late-2"]


class TestStalledInbox:
    def test_stall_suspends_progress_but_not_delivery(self):
        """Deliveries keep enqueuing during a stall (the NIC still
        receives); only user-level progress is suspended."""
        inbox = RpcInbox(rank=0)
        log = []
        inbox.stall_until = 10.0
        inbox.deliver(make_rpc(1.0, log, "a"))
        inbox.deliver(make_rpc(2.0, log, "b"))
        assert inbox.progress(5.0) == 0
        assert log == []
        assert inbox.delivered == 2
        assert inbox.pending() == 2
        assert inbox.next_arrival() == 1.0

    def test_flush_after_stall_restores_consistency(self):
        """Once the stall window ends the backlog flushes in arrival
        order, and pending()/next_arrival() agree with the queue."""
        inbox = RpcInbox(rank=0)
        log = []
        inbox.stall_until = 10.0
        for t, tag in [(1.0, "a"), (4.0, "b"), (12.0, "c")]:
            inbox.deliver(make_rpc(t, log, tag))
        assert inbox.progress(9.0) == 0
        # Exactly at the stall boundary progress resumes (tolerance
        # mirrors the arrival-time comparison).
        assert inbox.progress(10.0) == 2
        assert log == ["a", "b"]
        assert inbox.pending() == 1
        assert inbox.next_arrival() == 12.0
        assert inbox.progress(12.0) == 1
        assert inbox.pending() == 0
        assert inbox.next_arrival() is None

    def test_infinite_stall_models_crash(self):
        """``stall_until = inf`` never executes: the crashed-rank model
        used by the fault injector."""
        inbox = RpcInbox(rank=0)
        log = []
        inbox.stall_until = math.inf
        inbox.deliver(make_rpc(1.0, log, "a"))
        assert inbox.progress(1e18) == 0
        assert inbox.pending() == 1
        assert log == []
