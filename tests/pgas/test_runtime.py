"""Unit tests for the simulated UPC++ world: RPC, RMA, registries, devices."""

import numpy as np
import pytest

from repro.machine import perlmutter
from repro.pgas import (
    BufferRegistry,
    CommStats,
    DeviceOutOfMemory,
    MemoryKindsMode,
    MemorySpace,
    World,
)


def make_world(nranks=2, **kw):
    return World(nranks=nranks, machine=perlmutter(), **kw)


class TestBufferRegistry:
    def test_register_resolve(self):
        reg = BufferRegistry(rank=0)
        arr = np.arange(5.0)
        ptr = reg.register(arr)
        assert reg.resolve(ptr) is arr
        assert ptr.nbytes == 40

    def test_remote_resolve_rejected(self):
        reg = BufferRegistry(rank=0)
        other = BufferRegistry(rank=1)
        ptr = other.register(np.ones(3))
        with pytest.raises(ValueError):
            reg.resolve(ptr)

    def test_nbytes_override(self):
        reg = BufferRegistry(rank=0)
        ptr = reg.register(np.empty(0), nbytes=1234)
        assert ptr.nbytes == 1234

    def test_deregister_frees(self):
        reg = BufferRegistry(rank=0)
        ptr = reg.register(np.ones(10))
        assert reg.live_bytes() == 80
        reg.deregister(ptr)
        assert reg.live_bytes() == 0

    def test_device_pointer_flag(self):
        reg = BufferRegistry(rank=0)
        ptr = reg.register(np.ones(2), MemorySpace.DEVICE)
        assert ptr.is_device()


class TestCommStats:
    def test_merge_adds_every_field(self):
        a = CommStats(rpcs_sent=2, gets_issued=3, bytes_get=100,
                      bytes_device_direct=5, bytes_staged=6,
                      puts_issued=7, bytes_put=8)
        b = CommStats(rpcs_sent=10, gets_issued=20, bytes_get=30,
                      bytes_device_direct=40, bytes_staged=50,
                      puts_issued=60, bytes_put=70)
        out = a.merge(b)
        assert out is a  # merge mutates and returns self
        assert a == CommStats(rpcs_sent=12, gets_issued=23, bytes_get=130,
                              bytes_device_direct=45, bytes_staged=56,
                              puts_issued=67, bytes_put=78)
        assert b.rpcs_sent == 10  # the argument is untouched

    def test_iadd_accumulates(self):
        total = CommStats()
        total += CommStats(rpcs_sent=1, bytes_get=8)
        total += CommStats(rpcs_sent=2, bytes_get=16)
        assert total.rpcs_sent == 3
        assert total.bytes_get == 24

    def test_add_returns_new_object(self):
        a = CommStats(rpcs_sent=1)
        b = CommStats(rpcs_sent=2)
        c = a + b
        assert c.rpcs_sent == 3
        assert a.rpcs_sent == 1 and b.rpcs_sent == 2
        assert c is not a and c is not b

    def test_merge_matches_world_accumulation(self):
        """Summing two worlds' stats equals the per-field totals."""
        w1, w2 = make_world(), make_world()
        w1.rpc(0, 1, lambda p: None, None, t=0.0)
        w2.rpc(0, 1, lambda p: None, None, t=0.0)
        w2.rpc(1, 0, lambda p: None, None, t=0.0)
        total = w1.stats + w2.stats
        assert total.rpcs_sent == 3


class TestRpc:
    def test_rpc_executes_only_at_progress(self):
        w = make_world()
        log = []
        w.rpc(0, 1, lambda p: log.append(p), "hello", t=0.0)
        w.run()
        assert log == []  # delivered but target never progressed
        executed = w.progress(1, w.events.now + 1.0)
        assert executed == 1 and log == ["hello"]

    def test_rpc_arrival_delayed_by_network(self):
        w = make_world()
        arrivals = []
        w.rpc(0, 1, lambda p: None, None, t=0.0,
              on_delivered=lambda t: arrivals.append(t))
        w.run()
        assert arrivals and arrivals[0] > 0.0

    def test_local_rpc_fast(self):
        w = make_world(nranks=1)
        arrivals = []
        w.rpc(0, 0, lambda p: None, None, t=1.0,
              on_delivered=lambda t: arrivals.append(t))
        w.run()
        assert arrivals[0] == pytest.approx(1.0)

    def test_progress_respects_arrival_times(self):
        w = make_world()
        log = []
        w.rpc(0, 1, lambda p: log.append(p), "x", t=0.0)
        # progress before arrival: nothing runs
        assert w.progress(1, 0.0) == 0
        w.run()
        assert w.progress(1, 10.0) == 1

    def test_stats_counted(self):
        w = make_world()
        w.rpc(0, 1, lambda p: None, None, t=0.0)
        assert w.stats.rpcs_sent == 1


class TestRmaGet:
    def test_data_delivered(self):
        w = make_world()
        data = np.arange(8.0)
        ptr = w.register(0, data)
        got = []
        w.rma_get(1, ptr, t=0.0,
                  on_complete=lambda t, d: got.append((t, d)))
        w.run()
        assert got and got[0][1] is data
        assert got[0][0] > 0.0

    def test_completion_time_returned(self):
        w = make_world()
        ptr = w.register(0, np.ones(1 << 14))
        done = w.rma_get(1, ptr, t=2.0)
        assert done > 2.0

    def test_larger_takes_longer(self):
        w = make_world()
        small = w.register(0, np.ones(1 << 6))
        large = w.register(0, np.ones(1 << 20))
        assert w.rma_get(1, small, 0.0) < w.rma_get(1, large, 0.0)

    def test_device_direct_counted_native(self):
        w = make_world(mode=MemoryKindsMode.NATIVE)
        ptr = w.register(0, np.ones(1024))
        w.rma_get(1, ptr, 0.0, dst_space=MemorySpace.DEVICE)
        assert w.stats.bytes_device_direct == 8192
        assert w.stats.bytes_staged == 0

    def test_device_staged_counted_reference(self):
        w = make_world(mode=MemoryKindsMode.REFERENCE)
        ptr = w.register(0, np.ones(1024))
        w.rma_get(1, ptr, 0.0, dst_space=MemorySpace.DEVICE)
        assert w.stats.bytes_staged == 8192
        assert w.stats.bytes_device_direct == 0

    def test_reference_slower_than_native_to_device(self):
        wn = make_world(mode=MemoryKindsMode.NATIVE)
        wr = make_world(mode=MemoryKindsMode.REFERENCE)
        pn = wn.register(0, np.ones(1 << 16))
        pr = wr.register(0, np.ones(1 << 16))
        tn = wn.rma_get(1, pn, 0.0, dst_space=MemorySpace.DEVICE)
        tr = wr.rma_get(1, pr, 0.0, dst_space=MemorySpace.DEVICE)
        assert tr > tn


class TestRmaPut:
    def test_data_copied(self):
        w = make_world()
        target = np.zeros(4)
        ptr = w.register(1, target)
        w.rma_put(0, np.arange(4.0), ptr, t=0.0)
        assert np.allclose(target, [0, 1, 2, 3])
        assert w.stats.puts_issued == 1


class TestDeviceAllocator:
    def test_world_creates_devices(self):
        w = make_world(nranks=4, ranks_per_node=4, device_capacity=1 << 20)
        devices = [r.device.device_id for r in w.ranks]
        assert devices == [0, 1, 2, 3]  # cyclic binding p mod d

    def test_cyclic_binding_wraps(self):
        w = make_world(nranks=8, ranks_per_node=8, device_capacity=1 << 20)
        assert [r.device.device_id for r in w.ranks] == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_capacity_enforced(self):
        w = make_world(device_capacity=1000)
        dev = w.ranks[0].device
        dev.allocate((100,))  # 800 bytes
        with pytest.raises(DeviceOutOfMemory):
            dev.allocate((100,))
        assert dev.failed_allocs == 1

    def test_free_returns_capacity(self):
        w = make_world(device_capacity=1000)
        dev = w.ranks[0].device
        ptr = dev.allocate((100,))
        dev.free(ptr)
        assert dev.used == 0
        dev.allocate((100,))  # fits again

    def test_peak_tracked(self):
        w = make_world(device_capacity=10_000)
        dev = w.ranks[0].device
        p1 = dev.allocate((500,))
        dev.free(p1)
        dev.allocate((100,))
        assert dev.peak == 4000

    def test_no_device_without_capacity(self):
        w = make_world()
        assert w.ranks[0].device is None


class TestWorldValidation:
    def test_rejects_zero_ranks(self):
        with pytest.raises(ValueError):
            make_world(nranks=0)

    def test_makespan_tracks_clocks(self):
        w = make_world()
        w.ranks[1].clock = 5.0
        assert w.makespan() == 5.0
