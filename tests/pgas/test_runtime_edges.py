"""Edge-case tests of the simulated PGAS runtime.

Complements ``test_runtime.py`` with the corner behaviours the
happens-before checker leans on: RPC execution order relative to
``progress()``, completion futures for one-sided transfers, device-kind
copy paths, and empty-queue no-ops.
"""

import numpy as np
import pytest

from repro.machine import perlmutter
from repro.pgas import MemoryKindsMode, MemorySpace, World
from repro.pgas.device_kinds import DeviceKind, vendor_libraries
from repro.pgas.rpc import PendingRpc, RpcInbox


def make_world(nranks=2, **kw):
    return World(nranks=nranks, machine=perlmutter(), **kw)


class TestRpcOrdering:
    def test_progress_executes_in_arrival_order(self):
        inbox = RpcInbox(rank=0)
        log = []
        for t, tag in [(1.0, "a"), (2.0, "b"), (3.0, "c")]:
            inbox.deliver(PendingRpc(arrival_time=t, fn=log.append,
                                     payload=tag, src_rank=1))
        assert inbox.progress(10.0) == 3
        assert log == ["a", "b", "c"]

    def test_partial_progress_by_time(self):
        inbox = RpcInbox(rank=0)
        log = []
        for t in (1.0, 2.0, 3.0):
            inbox.deliver(PendingRpc(arrival_time=t, fn=log.append,
                                     payload=t, src_rank=1))
        assert inbox.progress(2.0) == 2
        assert log == [1.0, 2.0]
        assert inbox.pending() == 1
        assert inbox.next_arrival() == 3.0
        assert inbox.progress(3.0) == 1
        assert inbox.pending() == 0

    def test_arrival_exactly_at_now_executes(self):
        """The 1e-15 tolerance admits arrivals at exactly ``now``."""
        inbox = RpcInbox(rank=0)
        ran = []
        inbox.deliver(PendingRpc(arrival_time=5.0, fn=ran.append,
                                 payload=None, src_rank=1))
        assert inbox.progress(5.0) == 1 and ran == [None]

    def test_two_sends_same_target_keep_issue_order(self):
        """Network FIFO per pair: earlier send never overtakes later."""
        w = make_world()
        log = []
        w.rpc(0, 1, log.append, "first", t=0.0)
        w.rpc(0, 1, log.append, "second", t=0.5)
        w.run()
        w.progress(1, 1e9)
        assert log == ["first", "second"]

    def test_counters_track_delivery_vs_execution(self):
        w = make_world()
        w.rpc(0, 1, lambda p: None, None, t=0.0)
        w.run()
        inbox = w.ranks[1].inbox
        assert (inbox.delivered, inbox.executed) == (1, 0)
        w.progress(1, 1e9)
        assert (inbox.delivered, inbox.executed) == (1, 1)


class TestEmptyQueueProgress:
    def test_progress_on_empty_inbox_is_noop(self):
        w = make_world()
        inbox = w.ranks[0].inbox
        assert w.progress(0, 100.0) == 0
        assert (inbox.delivered, inbox.executed) == (0, 0)
        assert inbox.next_arrival() is None

    def test_progress_before_arrival_leaves_queue_intact(self):
        w = make_world()
        w.rpc(0, 1, lambda p: None, None, t=0.0)
        w.run()
        inbox = w.ranks[1].inbox
        arrival = inbox.next_arrival()
        assert w.progress(1, arrival - 1e-6) == 0
        assert inbox.pending() == 1
        assert inbox.next_arrival() == arrival

    def test_repeated_empty_progress_stays_zero(self):
        w = make_world()
        for t in (0.0, 1.0, 2.0):
            assert w.progress(1, t) == 0


class TestCompletionFutures:
    def test_rget_callback_time_matches_return(self):
        w = make_world()
        data = np.arange(16.0)
        ptr = w.register(0, data)
        done_cb = []
        done = w.rma_get(1, ptr, t=3.0,
                         on_complete=lambda t, d: done_cb.append((t, d)))
        w.run()
        assert done_cb and done_cb[0][0] == pytest.approx(done)
        assert done_cb[0][1] is data
        assert done > 3.0

    def test_rget_without_callback_schedules_nothing(self):
        w = make_world()
        ptr = w.register(0, np.ones(4))
        w.rma_get(1, ptr, t=0.0)
        assert w.run() == 0.0  # event queue stays empty

    def test_rput_completion_after_issue_time(self):
        w = make_world()
        target = np.zeros(8)
        ptr = w.register(1, target)
        done = w.rma_put(0, np.full(8, 2.0), ptr, t=4.0)
        assert done > 4.0
        assert np.allclose(target, 2.0)
        assert w.stats.bytes_put == 64

    def test_copy_is_rget_shaped(self):
        """``copy()`` delegates to the get path: same counters, callback."""
        w = make_world()
        data = np.arange(8.0)
        ptr = w.register(0, data)
        got = []
        done = w.copy(ptr, 1, t=0.0,
                      on_complete=lambda t, d: got.append(d))
        w.run()
        assert got == [data]
        assert w.stats.gets_issued == 1 and done > 0.0


class TestDeviceKindCopyPaths:
    def test_device_source_counts_like_device_dest(self):
        """A get *from* a device buffer is a device-endpoint transfer."""
        w = make_world(mode=MemoryKindsMode.NATIVE)
        ptr = w.register(0, np.ones(256), MemorySpace.DEVICE)
        w.rma_get(1, ptr, t=0.0)  # host destination
        assert w.stats.bytes_device_direct == 2048
        assert w.stats.bytes_staged == 0

    def test_host_to_host_copy_counts_neither_path(self):
        w = make_world(mode=MemoryKindsMode.REFERENCE)
        ptr = w.register(0, np.ones(256))
        w.copy(ptr, 1, t=0.0)
        assert w.stats.bytes_device_direct == 0
        assert w.stats.bytes_staged == 0
        assert w.stats.bytes_get == 2048

    def test_copy_into_device_respects_mode(self):
        for mode, direct, staged in (
            (MemoryKindsMode.NATIVE, 2048, 0),
            (MemoryKindsMode.REFERENCE, 0, 2048),
        ):
            w = make_world(mode=mode)
            ptr = w.register(0, np.ones(256))
            w.copy(ptr, 1, t=0.0, dst_space=MemorySpace.DEVICE)
            assert w.stats.bytes_device_direct == direct, mode
            assert w.stats.bytes_staged == staged, mode

    def test_world_carries_device_kind(self):
        for kind in (DeviceKind.CUDA, DeviceKind.HIP, DeviceKind.ZE):
            w = make_world(device_capacity=1 << 20, device_kind=kind)
            assert w.ranks[0].device.kind is kind

    def test_wildcard_kind_resolves_to_cuda_stack(self):
        libs = vendor_libraries(DeviceKind.ANY)
        assert libs.kind is DeviceKind.CUDA
        assert libs.blas == "cuBLAS" and libs.launch_factor == 1.0

    def test_vendor_launch_factors_ordered(self):
        cuda = vendor_libraries(DeviceKind.CUDA)
        hip = vendor_libraries(DeviceKind.HIP)
        ze = vendor_libraries(DeviceKind.ZE)
        assert cuda.launch_factor < hip.launch_factor < ze.launch_factor
