"""Unit tests of the plan compile pass: fusion, interning, validation."""

import numpy as np
import pytest

from repro.core.solver import SolverOptions
from repro.kernels.dispatch import KernelCall
from repro.plans import PlanStats, compile_plan, compile_stream


def _syrk(tgt, s, lo=0, sign=-1.0):
    return KernelCall("syrk_sub", (tgt, ("diag", s),
                                   np.arange(lo, lo + 4), sign))


def _gemm(tgt, s, bi, lo=0, sign=-1.0):
    return KernelCall("gemm_sub", (tgt, ("blk", s, 0), ("blk", s, bi),
                                   np.arange(lo, lo + 4), sign))


def test_adjacent_same_target_runs_fuse():
    tgt = ("panel", 7)
    raw = [(_syrk(tgt, 0), 2), (_gemm(tgt, 0, 1, lo=4), 2),
           (_syrk(tgt, 1, lo=8), 2)]
    plan = compile_stream(raw)
    assert plan.fused_groups == 1
    assert plan.fused_calls == 3
    assert len(plan.stream) == 1
    call, wave = plan.stream[0]
    assert call.op == "multi_update" and wave == 2
    actions = call.args[0]
    assert [a[0] for a in actions] == ["syrk", "gemm", "syrk"]
    # Action tuples carry the source calls' operands in submission order.
    assert actions[0][1] == tgt and actions[0][3] is None
    assert actions[1][3] == ("blk", 0, 1)
    assert np.array_equal(actions[2][4], np.arange(8, 12))


def test_wave_boundary_breaks_fusion():
    tgt = ("panel", 7)
    raw = [(_syrk(tgt, 0), 1), (_syrk(tgt, 1), 2)]
    plan = compile_stream(raw)
    assert plan.fused_groups == 0
    assert [c.op for c, _w in plan.stream] == ["syrk_sub", "syrk_sub"]


def test_target_change_breaks_fusion():
    raw = [(_syrk(("panel", 7), 0), 1), (_syrk(("panel", 8), 1), 1)]
    plan = compile_stream(raw)
    assert plan.fused_groups == 0


def test_intervening_op_breaks_fusion():
    tgt = ("panel", 7)
    raw = [(_syrk(tgt, 0), 1),
           (KernelCall("trsm_block", (7, 0)), 1),
           (_syrk(tgt, 1), 1)]
    plan = compile_stream(raw)
    assert plan.fused_groups == 0
    assert len(plan.stream) == 3


def test_singleton_run_not_fused():
    plan = compile_stream([(_syrk(("panel", 7), 0), 1)])
    assert plan.fused_groups == 0
    assert plan.stream[0][0].op == "syrk_sub"


def test_interning_dedups_refs_and_arrays():
    # The same flat array content and the same ref tuple, as *distinct*
    # objects per call — compilation must collapse them to one each.
    raw = [(KernelCall("syrk_sub", (("panel", 7), ("diag", 0),
                                    np.arange(4), -1.0)), 1),
           (KernelCall("trsm_block", (3, 0)), 2),
           (KernelCall("syrk_sub", (("panel", 7), ("diag", 0),
                                    np.arange(4), -1.0)), 3)]
    plan = compile_stream(raw)
    assert plan.interned_arrays == 1
    assert plan.interned_refs >= 2  # ("panel", 7) and ("diag", 0)
    a0 = plan.stream[0][0].args
    a2 = plan.stream[2][0].args
    assert a0[0] is a2[0] and a0[1] is a2[1] and a0[2] is a2[2]


def test_compile_plan_accumulates_stats():
    stats = PlanStats()
    tgt = ("panel", 1)
    raw = [(_syrk(tgt, 0), 0), (_syrk(tgt, 1), 0)]
    plan = compile_plan(raw, kind="factor", makespan=1.5, tasks=9,
                        rank_busy=(0.5, 1.0), stats=stats)
    assert plan.kind == "factor" and plan.calls == 2
    assert plan.makespan == 1.5 and plan.tasks == 9
    assert stats.compiles == 1 and stats.recorded_calls == 2
    assert stats.fused_groups == 1 and stats.fused_calls == 2
    assert stats.compile_seconds >= 0.0
    compile_plan(raw, stats=stats)
    assert stats.compiles == 2 and stats.recorded_calls == 4


def test_plan_mode_validation():
    with pytest.raises(ValueError, match="plan_mode"):
        SolverOptions(plan_mode="sometimes")


def test_plan_mode_rejects_resilience():
    from repro.resilience import ResilienceOptions

    with pytest.raises(ValueError, match="resilience"):
        SolverOptions(plan_mode="on", resilience=ResilienceOptions())
