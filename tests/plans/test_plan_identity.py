"""Plan replay == DES replay, to the last bit, for every solver family.

The compiled-plan promise: a warm refactorization (``update_values`` +
``factorize`` with ``plan_mode="on"``) and a warm solve execute the
recorded kernel stream directly — no task-graph traversal, no event
queue, no simulated RPC — and produce **bit-identical** factors and
solutions (``np.array_equal``, never ``allclose``) to a full DES-driven
replay of the same inputs.
"""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.baselines.pastix_like import PastixLikeSolver, PastixOptions
from repro.core.solver import SolverOptions, SymPackSolver
from repro.sparse import SymmetricCSC, grid_laplacian_2d, random_spd
from repro.variants import (
    FanBothOptions,
    FanBothSolver,
    FanInOptions,
    FanInSolver,
    MultifrontalOptions,
    MultifrontalSolver,
)

FAMILIES = [
    (SymPackSolver, SolverOptions),
    (FanInSolver, FanInOptions),
    (FanBothSolver, FanBothOptions),
    (MultifrontalSolver, MultifrontalOptions),
    (PastixLikeSolver, PastixOptions),
]


def _coalesced_batch(sizes, seed=0):
    rng = np.random.default_rng(seed)
    blocks = []
    for n in sizes:
        m = rng.standard_normal((n, n)) * 0.1
        blocks.append(m @ m.T + n * np.eye(n))
    return SymmetricCSC.from_any(sp.block_diag(blocks, format="csc"))


MATRICES = {
    "sparse": lambda: random_spd(60, density=0.15, seed=3),
    "grid": lambda: grid_laplacian_2d(9, 9),
    "coalesced": lambda: _coalesced_batch([6, 8, 8, 10, 12]),
}


def _shifted(a: SymmetricCSC, shift: float) -> SymmetricCSC:
    """Same pattern, diagonal shifted — the refactorization workload."""
    eye = sp.identity(a.n, format="csc")
    return SymmetricCSC.from_any(
        a.lower + a.lower.T - sp.diags(a.lower.diagonal()) + shift * eye)


def _run(solver_cls, options_cls, a, shifts, *, plan_mode, nranks,
         parallelism=4):
    """Factorize, then refactorize per shift, solving after each."""
    solver = solver_cls(a, options_cls(nranks=nranks,
                                       parallelism=parallelism,
                                       plan_mode=plan_mode))
    rhs = np.linspace(-1.0, 1.0, a.n * 2).reshape(a.n, 2)
    out = []
    solver.factorize()
    out.append((solver.storage.to_sparse_factor().toarray(),
                solver.solve(rhs)[0]))
    for shift in shifts:
        solver.update_values(_shifted(a, shift))
        solver.factorize()
        out.append((solver.storage.to_sparse_factor().toarray(),
                    solver.solve(rhs)[0]))
    stats = solver.plan_stats
    solver.close()
    return out, stats


@pytest.mark.parametrize("matrix_key", sorted(MATRICES))
@pytest.mark.parametrize("solver_cls,options_cls", FAMILIES,
                         ids=lambda v: getattr(v, "__name__", None))
def test_plan_replay_bit_identical_to_des(solver_cls, options_cls,
                                          matrix_key):
    """Warm plan refactorize + solve == DES graph replay, bit for bit."""
    a = MATRICES[matrix_key]()
    nranks = 2 if matrix_key == "sparse" else 1
    shifts = (0.3, 0.7)
    des, _ = _run(solver_cls, options_cls, a, shifts,
                  plan_mode="off", nranks=nranks)
    plan, stats = _run(solver_cls, options_cls, a, shifts,
                       plan_mode="on", nranks=nranks)
    for (f_des, x_des), (f_plan, x_plan) in zip(des, plan):
        assert np.array_equal(f_des, f_plan)
        assert np.array_equal(x_des, x_plan)
    # The warm runs actually rode the plans: 3 compiles (factor + two
    # solve sweeps), replays for 2 refactorizations + 2 warm solves.
    assert stats.compiles == 3
    assert stats.hits == 2 + 2 * 2


def test_multi_rhs_solve_plans_keyed_by_width():
    """Each rhs width compiles its own solve plan pair; both replay."""
    a = MATRICES["grid"]()
    solver = SymPackSolver(a, SolverOptions(nranks=1, parallelism=4,
                                            plan_mode="on"))
    ref = SymPackSolver(a, SolverOptions(nranks=1, parallelism=4))
    solver.factorize()
    ref.factorize()
    for nrhs in (1, 3, 1, 3):
        rhs = np.linspace(-1.0, 1.0, a.n * nrhs).reshape(a.n, nrhs)
        x, _ = solver.solve(rhs)
        x_ref, _ = ref.solve(rhs)
        assert np.array_equal(x, x_ref)
    assert sorted(solver._solve_plans) == [1, 3]
    assert solver.plan_stats.hits == 2 * 2  # second 1- and 3-rhs solves
    solver.close()
    ref.close()


def test_close_drops_plans_and_drains_arena():
    """close() retires the plan arena; the ledger returns to zero."""
    a = MATRICES["coalesced"]()
    solver = SymPackSolver(a, SolverOptions(nranks=1, parallelism=4,
                                            plan_mode="on"))
    solver.factorize()
    solver.update_values(_shifted(a, 0.5))
    solver.factorize()  # warm: populates the arena
    assert solver._factor_plan is not None
    solver.close()
    assert solver._factor_plan is None
    assert solver._plan_arena is None
    assert solver.session.ledger.live() == 0


def test_session_counts_plan_replays():
    """Plan replays land in the session's run accounting."""
    a = MATRICES["grid"]()
    solver = SymPackSolver(a, SolverOptions(nranks=1, parallelism=4,
                                            plan_mode="on"))
    solver.factorize()
    assert solver.session.plan_runs == 0
    solver.update_values(_shifted(a, 0.5))
    info_des_runs = solver.session.runs
    solver.factorize()
    assert solver.session.plan_runs == 1
    assert solver.session.runs == info_des_runs + 1
    solver.close()
