"""Bit-identity of the accelerated cold path against the retained references.

The quotient-graph minimum degree, the row-walk flat column structures,
the vectorized supernode build/amalgamation/regroup and the global block
partition were all written to reproduce the original implementations
*exactly* — same permutation, same supernode boundaries, same block
lists — so every downstream numeric artifact is unchanged.  These tests
pin that equivalence across the three synthetic workload families plus
random SPD patterns and seeds.
"""

import numpy as np
import pytest

from repro.ordering.amd import (
    minimum_degree_order,
    minimum_degree_order_reference,
)
from repro.sparse import bone_like, flan_like, random_spd, thermal_like
from repro.sparse.graph import AdjacencyGraph
from repro.symbolic import analyze, analyze_reference

FAMILIES = {
    "flan_like": lambda seed: flan_like(scale=4 + seed % 2),
    "bone_like": lambda seed: bone_like(scale=5 + seed % 2),
    "thermal_like": lambda seed: thermal_like(n=150 + 40 * (seed % 2)),
}


@pytest.mark.parametrize("family", sorted(FAMILIES))
@pytest.mark.parametrize("seed", [0, 1])
def test_quotient_md_matches_reference(family, seed):
    a = FAMILIES[family](seed)
    graph = AdjacencyGraph.from_symmetric(a)
    assert np.array_equal(minimum_degree_order(graph),
                          minimum_degree_order_reference(graph))


@pytest.mark.parametrize("seed", range(6))
def test_quotient_md_matches_reference_random(seed):
    rng = np.random.default_rng(seed)
    n = int(rng.integers(10, 90))
    density = float(rng.uniform(0.02, 0.6))
    a = random_spd(n, density=density, seed=seed + 100)
    graph = AdjacencyGraph.from_symmetric(a)
    assert np.array_equal(minimum_degree_order(graph),
                          minimum_degree_order_reference(graph))


def _assert_analysis_identical(fast, ref):
    assert np.array_equal(fast.perm.perm, ref.perm.perm)
    assert np.array_equal(fast.symbolic.parent, ref.symbolic.parent)
    assert np.array_equal(fast.symbolic.struct_ptr, ref.symbolic.struct_ptr)
    assert np.array_equal(fast.symbolic.struct_rows, ref.symbolic.struct_rows)
    sf, sr = fast.supernodes, ref.supernodes
    assert np.array_equal(sf.sn_start, sr.sn_start)
    assert np.array_equal(sf.sn_of_col, sr.sn_of_col)
    assert np.array_equal(sf.parent_sn, sr.parent_sn)
    assert sf.zeros_introduced == sr.zeros_introduced
    assert len(sf.structs) == len(sr.structs)
    for x, y in zip(sf.structs, sr.structs):
        assert np.array_equal(x, y)
    assert sf.factor_nnz() == sr.factor_nnz()
    bf, br = fast.blocks, ref.blocks
    assert bf.n_blocks() == br.n_blocks()
    for per_f, per_r in zip(bf.blocks, br.blocks):
        assert len(per_f) == len(per_r)
        for u, v in zip(per_f, per_r):
            assert (u.src, u.tgt, u.offset) == (v.src, v.tgt, v.offset)
            assert np.array_equal(u.rows, v.rows)


@pytest.mark.parametrize("family", sorted(FAMILIES))
@pytest.mark.parametrize("seed", [0, 1])
def test_full_pipeline_matches_reference(family, seed):
    a = FAMILIES[family](seed)
    _assert_analysis_identical(analyze(a), analyze_reference(a))


@pytest.mark.parametrize("ordering", ["scotch_like", "amd", "rcm"])
def test_pipeline_matches_reference_per_ordering(ordering):
    a = thermal_like(n=220)
    _assert_analysis_identical(analyze(a, ordering=ordering),
                               analyze_reference(a, ordering=ordering))


def _solver_families():
    from repro import CPU_ONLY, SolverOptions, SymPackSolver
    from repro.baselines.pastix_like import PastixLikeSolver, PastixOptions
    from repro.variants import (
        FanBothOptions,
        FanBothSolver,
        FanInOptions,
        FanInSolver,
        MultifrontalOptions,
        MultifrontalSolver,
    )

    return [
        (SymPackSolver, SolverOptions(nranks=2, offload=CPU_ONLY)),
        (FanInSolver, FanInOptions(nranks=2, offload=CPU_ONLY)),
        (FanBothSolver, FanBothOptions(nranks=2, offload=CPU_ONLY)),
        (MultifrontalSolver, MultifrontalOptions(nranks=2, offload=CPU_ONLY)),
        (PastixLikeSolver, PastixOptions(nranks=2, offload=CPU_ONLY)),
    ]


def test_factors_bit_identical_across_all_families():
    # End-to-end pin: feeding the *reference* cold path into each of the
    # five solver families produces factors bit-identical to the default
    # (accelerated) path.  The DES overhaul rides along implicitly — both
    # runs use the new event engine, so identical analyses must yield
    # identical task schedules and identical floating-point sums.
    a = thermal_like(n=240)
    ref = analyze_reference(a)
    for solver_cls, opts in _solver_families():
        fast = solver_cls(a, opts)
        fast.factorize()
        slow = solver_cls(a, opts, analysis=ref)
        slow.factorize()
        lf = fast.storage.to_sparse_factor()
        ls = slow.storage.to_sparse_factor()
        assert np.array_equal(lf.indptr, ls.indptr), solver_cls.__name__
        assert np.array_equal(lf.indices, ls.indices), solver_cls.__name__
        assert np.array_equal(lf.data, ls.data), solver_cls.__name__
