"""Bit-identity of the three flush execution modes, across all families.

The deferred executor promises that its three modes — serial one-at-a-time
(``batching=False``), batched submission-order (the default), and
wave-parallel (``parallelism > 1``) — produce **bit-identical** factors
and solutions (``np.array_equal``, not ``allclose``).  These tests pin
that promise for every solver family, plus the threaded wave path (which
auto-downgrades to inline execution on single-core hosts and must still
match when forced on).
"""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.baselines.pastix_like import PastixLikeSolver, PastixOptions
from repro.core.solver import SolverOptions, SymPackSolver
from repro.kernels.dispatch import ExecContext, KernelExecutor
from repro.sparse import SymmetricCSC, grid_laplacian_2d, random_spd
from repro.variants import (
    FanBothOptions,
    FanBothSolver,
    FanInOptions,
    FanInSolver,
    MultifrontalOptions,
    MultifrontalSolver,
)

FAMILIES = [
    (SymPackSolver, SolverOptions),
    (FanInSolver, FanInOptions),
    (FanBothSolver, FanBothOptions),
    (MultifrontalSolver, MultifrontalOptions),
    (PastixLikeSolver, PastixOptions),
]


def _coalesced_batch(sizes, seed=0):
    """Block-diagonal union of small dense SPD tenants (service pattern)."""
    rng = np.random.default_rng(seed)
    blocks = []
    for n in sizes:
        m = rng.standard_normal((n, n)) * 0.1
        blocks.append(m @ m.T + n * np.eye(n))
    return SymmetricCSC.from_any(sp.block_diag(blocks, format="csc"))


MATRICES = {
    "sparse": lambda: random_spd(60, density=0.15, seed=3),
    "grid": lambda: grid_laplacian_2d(9, 9),
    "coalesced": lambda: _coalesced_batch([6, 8, 8, 10, 12]),
}


def _run(solver_cls, options_cls, a, *, parallelism, batching, nranks):
    solver = solver_cls(a, options_cls(nranks=nranks, parallelism=parallelism,
                                       batching=batching))
    solver.factorize()
    factor = solver.storage.to_sparse_factor().toarray()
    rhs = np.linspace(-1.0, 1.0, a.n * 2).reshape(a.n, 2)
    x, _ = solver.solve(rhs)
    return factor, x


@pytest.mark.parametrize("matrix_key", sorted(MATRICES))
@pytest.mark.parametrize("solver_cls,options_cls", FAMILIES,
                         ids=lambda v: getattr(v, "__name__", None))
def test_three_modes_bit_identical(solver_cls, options_cls, matrix_key):
    """serial == batched == wave-parallel, to the last bit, per family."""
    a = MATRICES[matrix_key]()
    nranks = 2 if matrix_key == "sparse" else 1
    f_serial, x_serial = _run(solver_cls, options_cls, a,
                              parallelism=1, batching=False, nranks=nranks)
    f_batched, x_batched = _run(solver_cls, options_cls, a,
                                parallelism=1, batching=True, nranks=nranks)
    f_waves, x_waves = _run(solver_cls, options_cls, a,
                            parallelism=4, batching=True, nranks=nranks)
    assert np.array_equal(f_serial, f_batched)
    assert np.array_equal(x_serial, x_batched)
    assert np.array_equal(f_serial, f_waves)
    assert np.array_equal(x_serial, x_waves)


def test_wave_path_threaded_matches_inline():
    """Forcing real worker threads changes nothing, bit for bit."""
    a = _coalesced_batch([8, 8, 12, 12, 16, 16], seed=5)

    # Run the captured kernel stream through both pool flavours directly.
    solver = SymPackSolver(a, SolverOptions(nranks=1, parallelism=4))
    captured = []
    orig = KernelExecutor.flush

    def capture(self):
        if self._pending and not captured:
            captured.append((list(self._pending), self))
        orig(self)

    KernelExecutor.flush = capture
    try:
        solver.factorize()
    finally:
        KernelExecutor.flush = orig
    pending, ex = captured[0]
    storage = ex.context.storage

    results = {}
    for use_threads in (False, True):
        storage.reset()
        ex.context.fresh_run()
        runner = KernelExecutor(ex.context, parallelism=4,
                                use_threads=use_threads)
        runner._flush_waves(pending)
        results[use_threads] = storage.to_sparse_factor().toarray()
    assert np.array_equal(results[False], results[True])


def test_run_one_matches_flush_modes():
    """One-at-a-time run_one over the stream equals every flush mode."""
    a = _coalesced_batch([8, 10, 12], seed=11)
    solver = SymPackSolver(a, SolverOptions(nranks=1, parallelism=4))
    captured = []
    orig = KernelExecutor.flush

    def capture(self):
        if self._pending and not captured:
            captured.append((list(self._pending), self))
        orig(self)

    KernelExecutor.flush = capture
    try:
        solver.factorize()
    finally:
        KernelExecutor.flush = orig
    pending, ex = captured[0]
    storage = ex.context.storage

    storage.reset()
    ex.context.fresh_run()
    runner = KernelExecutor(ex.context)
    for call, _wave in pending:
        runner.run_one(call)
    one_at_a_time = storage.to_sparse_factor().toarray()

    storage.reset()
    ex.context.fresh_run()
    KernelExecutor(ex.context, parallelism=4)._flush_waves(pending)
    waves = storage.to_sparse_factor().toarray()
    assert np.array_equal(one_at_a_time, waves)


def test_scratch_array_shape_mismatch_raises():
    """Aliased aggregate buffers with conflicting shapes fail loudly."""
    ctx = ExecContext()
    ctx.scratch_array(("agg", 1), (3, 4))
    with pytest.raises(ValueError, match="shape"):
        ctx.scratch_array(("agg", 1), (4, 4))
