"""Property tests: the solver stays correct under randomized option sets.

Every combination of ordering, mapping, amalgamation relaxation,
scheduling policy, memory-kinds mode, rank count and node folding must
produce a correct solution — configuration must never change numerics.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import CPU_ONLY, MemoryKindsMode, OffloadPolicy, SolverOptions, SymPackSolver
from repro.sparse import random_spd
from repro.symbolic import AmalgamationOptions

ROBUST = settings(max_examples=30, deadline=None,
                  suppress_health_check=[HealthCheck.too_slow])


@st.composite
def solver_options(draw):
    nranks = draw(st.integers(min_value=1, max_value=9))
    return SolverOptions(
        nranks=nranks,
        ranks_per_node=draw(st.sampled_from(
            [1, 2, 4])) if nranks > 1 else 1,
        ordering=draw(st.sampled_from(
            ["natural", "rcm", "amd", "nd", "scotch_like"])),
        amalgamation=AmalgamationOptions(
            enabled=draw(st.booleans()),
            max_zeros_ratio=draw(st.floats(min_value=0.0, max_value=0.8)),
            max_width=draw(st.integers(min_value=2, max_value=128)),
        ),
        mapping=draw(st.sampled_from(["2d", "1d-col", "1d-row"])),
        scheduling=draw(st.sampled_from(["fifo", "priority"])),
        memory_kinds=draw(st.sampled_from(list(MemoryKindsMode))),
        offload=draw(st.sampled_from([
            CPU_ONLY,
            OffloadPolicy().with_thresholds(GEMM=64, SYRK=64, TRSM=64,
                                            POTRF=64),
        ])),
    )


class TestOptionRobustness:
    @given(opts=solver_options(),
           seed=st.integers(min_value=0, max_value=2**31))
    @ROBUST
    def test_any_configuration_solves_correctly(self, opts, seed):
        a = random_spd(22, density=0.2, seed=seed % 7)
        rng = np.random.default_rng(seed)
        b = rng.standard_normal(a.n)
        solver = SymPackSolver(a, opts)
        solver.factorize()
        x, _ = solver.solve(b)
        assert solver.residual_norm(x, b) < 1e-9

    @given(opts=solver_options())
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_simulated_times_positive_and_finite(self, opts):
        a = random_spd(18, density=0.25, seed=1)
        solver = SymPackSolver(a, opts)
        info = solver.factorize()
        assert 0 < info.simulated_seconds < 1e6
        assert np.isfinite(info.simulated_seconds)
