"""Property-based tests on the runtime substrate (network, I/O, engine).

Complements ``test_properties.py`` (numeric invariants) with invariants of
the simulated machine: transfer-time monotonicity and triangle-like
bounds, I/O round-trips under fuzzed matrices, and conservation laws of
the fan-out protocol (every RPC pairs with exactly one get; every byte
sent is a byte received).
"""

import numpy as np
import scipy.sparse as sp
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import CPU_ONLY, SolverOptions, SymPackSolver
from repro.machine import perlmutter
from repro.pgas import MemoryKindsMode, MemorySpace, NetworkModel
from repro.sparse import (
    SymmetricCSC,
    lower_csc,
    read_matrix_market,
    read_rutherford_boeing,
    write_matrix_market,
    write_rutherford_boeing,
)

SLOW = settings(max_examples=25, deadline=None,
                suppress_health_check=[HealthCheck.too_slow])


@st.composite
def spd_matrices(draw, max_n=20):
    n = draw(st.integers(min_value=1, max_value=max_n))
    density = draw(st.floats(min_value=0.0, max_value=0.5))
    seed = draw(st.integers(min_value=0, max_value=2**31))
    rng = np.random.default_rng(seed)
    nnz = int(density * n * n)
    i = rng.integers(0, n, nnz)
    j = rng.integers(0, n, nnz)
    v = rng.uniform(-1, 1, nnz).round(6)  # exact decimal round-trip
    m = sp.coo_matrix((v, (i, j)), shape=(n, n)).tocsc()
    m = m + m.T
    row = np.asarray(np.abs(m).sum(axis=1)).ravel()
    a = m + sp.diags((row + 1.0).round(6))
    return SymmetricCSC(lower_csc(a))


class TestNetworkProperties:
    @given(st.integers(1, 2**24), st.integers(1, 2**24),
           st.sampled_from(list(MemoryKindsMode)))
    def test_transfer_monotone_in_size(self, a_bytes, b_bytes, mode):
        net = NetworkModel(machine=perlmutter(), ranks_per_node=2, mode=mode)
        small, large = min(a_bytes, b_bytes), max(a_bytes, b_bytes)
        t_small = net.transfer_time(small, 0, 3, dst_space=MemorySpace.DEVICE)
        t_large = net.transfer_time(large, 0, 3, dst_space=MemorySpace.DEVICE)
        assert t_small <= t_large

    @given(st.integers(1, 2**24))
    def test_native_never_slower_than_reference(self, nbytes):
        nat = NetworkModel(machine=perlmutter(), mode=MemoryKindsMode.NATIVE)
        ref = NetworkModel(machine=perlmutter(),
                           mode=MemoryKindsMode.REFERENCE)
        assert (nat.transfer_time(nbytes, 0, 1, dst_space=MemorySpace.DEVICE)
                <= ref.transfer_time(nbytes, 0, 1,
                                     dst_space=MemorySpace.DEVICE))

    @given(st.integers(1, 2**22), st.integers(2, 128))
    def test_flood_bandwidth_positive_and_below_wire(self, nbytes, window):
        net = NetworkModel(machine=perlmutter())
        bw = net.flood_bandwidth(nbytes, window=window)
        assert 0 < bw <= perlmutter().nic_bw * (1 + 1e-9)

    @given(st.integers(0, 63), st.integers(0, 63))
    def test_transfer_symmetric_in_endpoints(self, r1, r2):
        net = NetworkModel(machine=perlmutter(), ranks_per_node=4)
        t12 = net.transfer_time(4096, r1, r2)
        t21 = net.transfer_time(4096, r2, r1)
        assert t12 == t21


class TestIoRoundTripProperties:
    @given(a=spd_matrices())
    @SLOW
    def test_matrix_market_roundtrip(self, tmp_path_factory, a):
        path = tmp_path_factory.mktemp("mm") / "m.mtx"
        write_matrix_market(path, a)
        back = read_matrix_market(path)
        assert np.allclose(back.to_dense(), a.to_dense(), atol=1e-12)

    @given(a=spd_matrices())
    @SLOW
    def test_rutherford_boeing_roundtrip(self, tmp_path_factory, a):
        path = tmp_path_factory.mktemp("rb") / "m.rb"
        write_rutherford_boeing(path, a)
        back = read_rutherford_boeing(path)
        assert np.allclose(back.to_dense(), a.to_dense(), atol=1e-9)


class TestProtocolConservation:
    @given(spd_matrices(max_n=16), st.integers(min_value=2, max_value=6))
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_every_rpc_pairs_with_one_get(self, a, nranks):
        solver = SymPackSolver(a, SolverOptions(nranks=nranks,
                                                offload=CPU_ONLY))
        info = solver.factorize()
        assert info.comm.gets_issued == info.comm.rpcs_sent

    @given(spd_matrices(max_n=16), st.integers(min_value=1, max_value=6))
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_makespan_at_least_critical_rank(self, a, nranks):
        """Makespan is bounded below by the busiest rank's compute time."""
        solver = SymPackSolver(a, SolverOptions(nranks=nranks,
                                                offload=CPU_ONLY))
        info = solver.factorize()
        assert info.simulated_seconds >= max(info.rank_busy) - 1e-12

    @given(spd_matrices(max_n=16))
    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_adding_ranks_never_loses_tasks(self, a):
        counts = set()
        for nranks in (1, 3, 5):
            solver = SymPackSolver(a, SolverOptions(nranks=nranks,
                                                    offload=CPU_ONLY))
            counts.add(solver.factorize().tasks)
        assert len(counts) == 1  # task graph independent of mapping
