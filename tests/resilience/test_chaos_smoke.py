"""Chaos-harness smoke: one family through every fault scenario."""

from repro.resilience.chaos import SCENARIOS, run_chaos, write_report


class TestChaosSmoke:
    def test_sympack_grid_passes_every_scenario(self, tmp_path):
        report = run_chaos(quick=True, families=["SymPack"])
        assert len(report.results) == len(SCENARIOS)
        for cell in report.results:
            assert cell.ok, f"{cell.scenario} failed: {cell}"
            assert cell.faults_injected >= 1
            assert cell.checkpoints >= 1
        crash = next(r for r in report.results if r.scenario == "crash")
        assert crash.recoveries >= 1
        path = write_report(report, tmp_path / "BENCH_resilience.json")
        assert path.exists()
        assert '"ok": true' in path.read_text()
