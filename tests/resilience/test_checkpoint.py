"""Checkpoint save/load round-trips and crash-restart bit-identity."""

import hashlib

import numpy as np
import pytest

from repro import SolverOptions, SymPackSolver
from repro.core.serialization import (checkpoint_path, load_checkpoint,
                                      save_checkpoint)
from repro.resilience import (CheckpointIOError, CheckpointState, FaultPlan,
                              ResilienceOptions)
from repro.sparse import random_spd


def factor_digest(solver):
    h = hashlib.sha256()
    for d in solver.storage.diag:
        h.update(d.tobytes())
    for p in solver.storage.panels:
        h.update(p.tobytes())
    return h.hexdigest()


def make_state():
    rng = np.random.default_rng(0)
    return CheckpointState(
        frontier=3,
        executed=(0, 1, 4),
        waves=(0, 1, 2, 5, 1, 7),
        diag=[rng.standard_normal((2, 2)), rng.standard_normal((3, 3))],
        panels=[rng.standard_normal((4, 2)), np.zeros((0, 3))],
        scratch={("acc", 1): rng.standard_normal((3, 3))},
        transient={
            ("panel", 0, 1): (True, ((True, rng.standard_normal((2, 2))),
                                     (False, [0, 2]))),
            ("meta", 2): (False, ((False, "tag"),)),
        },
    )


class TestSerializationRoundTrip:
    def test_round_trip_preserves_everything(self, tmp_path):
        state = make_state()
        save_checkpoint(state, tmp_path, label="factor")
        loaded = load_checkpoint(checkpoint_path(tmp_path, "factor"))
        assert loaded.frontier == state.frontier
        assert loaded.executed == state.executed
        assert loaded.waves == state.waves
        for a, b in zip(loaded.diag, state.diag):
            assert np.array_equal(a, b)
        for a, b in zip(loaded.panels, state.panels):
            assert np.array_equal(a, b)
        assert set(loaded.scratch) == set(state.scratch)
        for key in state.scratch:
            assert np.array_equal(loaded.scratch[key], state.scratch[key])
        assert set(loaded.transient) == set(state.transient)
        is_tuple, saved = loaded.transient[("panel", 0, 1)]
        assert is_tuple
        assert saved[0][0] is True
        assert np.array_equal(saved[0][1],
                              state.transient[("panel", 0, 1)][1][0][1])
        assert loaded.transient[("meta", 2)][1][0][1] == "tag"

    def test_unwritable_directory_raises_typed_error(self, tmp_path):
        blocker = tmp_path / "blocker"
        blocker.write_text("")
        with pytest.raises(CheckpointIOError, match="cannot write"):
            save_checkpoint(make_state(), blocker / "sub")

    def test_missing_file_raises_typed_error(self, tmp_path):
        with pytest.raises(CheckpointIOError):
            load_checkpoint(tmp_path / "nope.npz")

    def test_corrupt_file_raises_typed_error(self, tmp_path):
        bad = tmp_path / "factor_checkpoint.npz"
        bad.write_bytes(b"definitely not an npz archive")
        with pytest.raises(CheckpointIOError):
            load_checkpoint(bad)


class TestCrashRestartBitIdentity:
    @pytest.fixture(scope="class")
    def problem(self):
        a = random_spd(60, density=0.15, seed=3)
        rhs = np.linspace(-1.0, 1.0, a.n).reshape(a.n, 1)
        return a, rhs

    def run(self, a, rhs, res):
        solver = SymPackSolver(a, SolverOptions(nranks=2, resilience=res))
        info = solver.factorize()
        x, _ = solver.solve(rhs)
        out = (factor_digest(solver), x.tobytes(),
               solver.session.recoveries,
               solver.session.trace.resilience_counts(),
               info.simulated_seconds)
        solver.close()
        return out

    def test_restart_from_checkpoint_is_bit_identical(self, problem,
                                                      tmp_path):
        a, rhs = problem
        base_digest, base_x, _, _, makespan = self.run(
            a, rhs, ResilienceOptions(hardened=True, checkpoint_every=2))
        plan = FaultPlan(seed=0, crashes=((1, 0.4 * makespan),))
        digest, x, recoveries, counts, _ = self.run(
            a, rhs, ResilienceOptions(
                hardened=True, faults=plan, checkpoint_every=2,
                checkpoint_dir=str(tmp_path)))
        assert recoveries >= 1
        assert counts["recoveries"] >= 1
        assert counts["checkpoints"] >= 1
        assert counts["faults_injected"] >= 1
        assert digest == base_digest
        assert x == base_x
        # The persisted checkpoint is loadable and frontier-consistent.
        persisted = load_checkpoint(checkpoint_path(tmp_path, "factor"))
        assert all(persisted.waves[tid] <= persisted.frontier
                   for tid in persisted.executed)
