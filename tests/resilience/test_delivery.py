"""Hardened transport: bit-identity under message faults, typed escapes."""

import hashlib

import numpy as np
import pytest

from repro import SolverOptions, SymPackSolver
from repro.resilience import (FaultPlan, RankUnresponsive,
                              ResilienceOptions)
from repro.sparse import random_spd


def factor_digest(solver):
    h = hashlib.sha256()
    for d in solver.storage.diag:
        h.update(d.tobytes())
    for p in solver.storage.panels:
        h.update(p.tobytes())
    return h.hexdigest()


def run_solver(a, rhs, res):
    solver = SymPackSolver(a, SolverOptions(nranks=2, resilience=res))
    info = solver.factorize()
    x, _ = solver.solve(rhs)
    digest = factor_digest(solver)
    comm, makespan = info.comm, info.simulated_seconds
    solver.close()
    return digest, x, comm, makespan


@pytest.fixture(scope="module")
def problem():
    a = random_spd(60, density=0.15, seed=3)
    rhs = np.linspace(-1.0, 1.0, a.n).reshape(a.n, 1)
    return a, rhs


@pytest.fixture(scope="module")
def baseline(problem):
    a, rhs = problem
    return run_solver(a, rhs, ResilienceOptions(hardened=True))


class TestBitIdentityUnderFaults:
    def test_drop_faults_retry_to_identical_factor(self, problem, baseline):
        a, rhs = problem
        digest, x, comm, _ = run_solver(
            a, rhs, ResilienceOptions(
                hardened=True, faults=FaultPlan(seed=1, drop=0.15),
                checkpoint_every=2))
        assert comm.rpcs_dropped > 0
        assert comm.retries > 0
        assert digest == baseline[0]
        assert x.tobytes() == baseline[1].tobytes()

    def test_duplicates_are_suppressed_bit_identically(self, problem,
                                                       baseline):
        a, rhs = problem
        digest, x, comm, _ = run_solver(
            a, rhs, ResilienceOptions(
                hardened=True, faults=FaultPlan(seed=1, duplicate=0.3)))
        assert comm.rpcs_duplicated > 0
        assert comm.dup_suppressed > 0
        assert digest == baseline[0]
        assert x.tobytes() == baseline[1].tobytes()

    def test_ack_traffic_is_counted(self, baseline):
        comm = baseline[2]
        assert comm.signals_sent > 0
        assert comm.acks_sent >= comm.signals_sent


class TestTypedEscapes:
    def test_crash_without_checkpoint_raises_rank_unresponsive(self,
                                                               problem,
                                                               baseline):
        a, rhs = problem
        # Crash rank 1 mid-run (40% of the fault-free makespan); with no
        # checkpoints there is nothing to restore, so the typed error
        # must escape factorize().
        plan = FaultPlan(seed=0, crashes=((1, 0.4 * baseline[3]),))
        solver = SymPackSolver(a, SolverOptions(
            nranks=2, resilience=ResilienceOptions(
                hardened=True, faults=plan, checkpoint_every=0)))
        with pytest.raises(RankUnresponsive) as excinfo:
            solver.factorize()
        assert excinfo.value.rank == 1
        assert "rank 1" in str(excinfo.value)
        solver.close()

    def test_unhardened_drop_deadlocks_loudly(self, problem):
        """Without the acked transport a dropped signal is lost for
        good: the engine must fail loudly (deadlock), not hang."""
        a, rhs = problem
        solver = SymPackSolver(a, SolverOptions(
            nranks=2, resilience=ResilienceOptions(
                hardened=False, faults=FaultPlan(seed=0, drop=1.0))))
        with pytest.raises(RuntimeError, match="deadlock"):
            solver.factorize()
        solver.close()
