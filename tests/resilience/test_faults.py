"""Fault-plan parsing/validation and injector determinism."""

import pytest

from repro.resilience import (FAULT_KINDS, FaultInjector, FaultPlan,
                              FaultPlanError)


class TestFaultPlanValidation:
    def test_defaults_are_fault_free(self):
        plan = FaultPlan()
        assert not plan.has_message_faults
        assert not plan.has_rank_faults

    @pytest.mark.parametrize("kw", [
        {"drop": -0.1}, {"duplicate": 1.5},
        {"drop": 0.6, "duplicate": 0.6},          # probabilities sum > 1
        {"delay_spike": -1.0},
        {"stalls": ((1, 5.0, 2.0),)},             # window not ordered
        {"stalls": ((1, -1.0, 2.0),)},            # negative start
        {"crashes": ((1, -0.5),)},                # negative crash time
    ])
    def test_invalid_plans_raise_typed_error(self, kw):
        with pytest.raises(FaultPlanError):
            FaultPlan(**kw)

    def test_json_round_trip(self):
        plan = FaultPlan(seed=7, drop=0.1, duplicate=0.2,
                         stalls=((1, 0.5, 1.5),), crashes=((0, 2.0),))
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_unknown_key_rejected(self):
        with pytest.raises(FaultPlanError, match="unknown"):
            FaultPlan.from_spec({"drop": 0.1, "explode": True})

    def test_non_object_json_rejected(self):
        with pytest.raises(FaultPlanError):
            FaultPlan.from_json("[1, 2, 3]")

    def test_malformed_json_rejected(self):
        with pytest.raises(FaultPlanError, match="not valid JSON"):
            FaultPlan.from_json("not json at all")

    def test_taxonomy_is_stable(self):
        assert FAULT_KINDS == ("drop", "duplicate", "reorder", "delay",
                               "stall", "pause", "crash")


class TestInjectorDeterminism:
    def route_stream(self, plan, n=200):
        injector = FaultInjector(plan)
        fates = [tuple(injector.route(0, 1, t=float(i), arrival=float(i) + 0.1))
                 for i in range(n)]
        return fates, injector

    def test_same_plan_same_fate_stream(self):
        plan = FaultPlan(seed=3, drop=0.2, duplicate=0.2, delay=0.2)
        first, inj1 = self.route_stream(plan)
        second, inj2 = self.route_stream(plan)
        assert first == second
        assert inj1.schedule_digest() == inj2.schedule_digest()

    def test_different_seed_different_schedule(self):
        a, inj_a = self.route_stream(FaultPlan(seed=0, drop=0.3))
        b, inj_b = self.route_stream(FaultPlan(seed=1, drop=0.3))
        assert inj_a.schedule_digest() != inj_b.schedule_digest()

    def test_channels_are_independent(self):
        """The fate of (0 -> 1) traffic does not shift when unrelated
        (1 -> 0) traffic interleaves: fates key off the per-channel
        message index, not a global counter."""
        plan = FaultPlan(seed=5, drop=0.3)
        solo = FaultInjector(plan)
        fates_solo = [tuple(solo.route(0, 1, float(i), float(i) + 0.1))
                      for i in range(50)]
        mixed = FaultInjector(plan)
        fates_mixed = []
        for i in range(50):
            mixed.route(1, 0, float(i), float(i) + 0.1)
            fates_mixed.append(
                tuple(mixed.route(0, 1, float(i), float(i) + 0.1)))
        assert fates_solo == fates_mixed

    def test_duplicate_yields_two_arrivals(self):
        plan = FaultPlan(seed=0, duplicate=1.0)
        injector = FaultInjector(plan)
        arrivals = injector.route(0, 1, t=1.0, arrival=1.1)
        assert len(arrivals) == 2
        assert arrivals[1] > arrivals[0]
        assert injector.records[0].kind == "duplicate"

    def test_drop_yields_no_arrival(self):
        injector = FaultInjector(FaultPlan(seed=0, drop=1.0))
        assert injector.route(0, 1, t=1.0, arrival=1.1) == []

    def test_dead_rank_drops_all_traffic(self):
        injector = FaultInjector(FaultPlan(seed=0))
        injector._dead.add(1)
        assert injector.route(0, 1, t=1.0, arrival=1.1) == []
        assert injector.route(1, 0, t=1.0, arrival=1.1) == []
        assert injector.rank_blocked(1)
        assert not injector.rank_blocked(0)
