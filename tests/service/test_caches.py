"""Unit tests for the service cache tiers and the request queue."""

import threading
from concurrent.futures import Future

import numpy as np
import pytest

from repro.service import (
    FactorCache,
    FactorEntry,
    RequestQueue,
    ServiceOverloaded,
    SolveRequest,
    SymbolicCache,
)
from repro.sparse import grid_laplacian_2d


def _entry(key: str, nbytes: int, values_key: str = "v") -> FactorEntry:
    return FactorEntry(pattern_key=key, solver=object(),
                       values_key=values_key, nbytes=nbytes)


class TestSymbolicCache:
    def test_hit_miss_counting(self):
        cache = SymbolicCache()
        assert cache.get("a") is None
        cache.put("a", "analysis-a")
        assert cache.get("a") == "analysis-a"
        assert cache.hits == 1
        assert cache.misses == 1

    def test_unbounded_by_default(self):
        cache = SymbolicCache()
        for i in range(100):
            cache.put(f"k{i}", i)
        assert len(cache) == 100

    def test_entry_cap_evicts_lru(self):
        cache = SymbolicCache(max_entries=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1       # refresh "a"; "b" is now LRU
        cache.put("c", 3)
        assert "b" not in cache
        assert "a" in cache and "c" in cache


class TestFactorCache:
    def test_rejects_nonpositive_budget(self):
        with pytest.raises(ValueError):
            FactorCache(0)

    def test_lru_eviction_by_budget(self):
        cache = FactorCache(budget_bytes=100)
        cache.put(_entry("a", 40))
        cache.put(_entry("b", 40))
        assert cache.get("a") is not None   # refresh "a"; "b" is now LRU
        evicted = cache.put(_entry("c", 40))
        assert [e.pattern_key for e in evicted] == ["b"]
        assert "a" in cache and "c" in cache and "b" not in cache
        assert cache.current_bytes == 80
        assert cache.evictions == 1
        assert cache.bytes_evicted == 40

    def test_newest_entry_retained_even_over_budget(self):
        """One oversized factor must not turn every request into a miss."""
        cache = FactorCache(budget_bytes=100)
        cache.put(_entry("small", 10))
        evicted = cache.put(_entry("huge", 500))
        assert [e.pattern_key for e in evicted] == ["small"]
        assert "huge" in cache
        assert cache.current_bytes == 500

    def test_replacing_entry_updates_accounting(self):
        cache = FactorCache(budget_bytes=100)
        cache.put(_entry("a", 40))
        cache.put(_entry("a", 60, values_key="v2"))
        assert len(cache) == 1
        assert cache.current_bytes == 60

    def test_account_resize(self):
        cache = FactorCache(budget_bytes=100)
        entry = _entry("a", 40)
        cache.put(entry)
        cache.account_resize(entry, 70)
        assert cache.current_bytes == 70
        assert entry.nbytes == 70


def _request(rid: int, pkey: str = "p", vkey: str = "v",
             ncols: int = 1) -> SolveRequest:
    a = grid_laplacian_2d(3, 3)
    return SolveRequest(request_id=rid, a=a,
                        b=np.zeros((a.n, ncols)), squeeze=False,
                        pattern_key=pkey, values_key=vkey,
                        future=Future(), submit_time=0.0)


class TestRequestQueue:
    def test_fifo(self):
        q = RequestQueue(maxsize=4)
        for i in range(3):
            q.put(_request(i))
        assert [q.get().request_id for _ in range(3)] == [0, 1, 2]

    def test_backpressure_raises_on_timeout(self):
        q = RequestQueue(maxsize=1)
        q.put(_request(0))
        with pytest.raises(ServiceOverloaded):
            q.put(_request(1), timeout=0.05)

    def test_put_unblocks_when_space_frees(self):
        q = RequestQueue(maxsize=1)
        q.put(_request(0))
        done = threading.Event()

        def producer():
            q.put(_request(1), timeout=5.0)
            done.set()

        t = threading.Thread(target=producer)
        t.start()
        assert q.get().request_id == 0
        assert done.wait(5.0)
        t.join()
        assert q.get().request_id == 1

    def test_get_timeout_returns_none(self):
        q = RequestQueue(maxsize=1)
        assert q.get(timeout=0.05) is None

    def test_closed_queue_rejects_put_drains_get(self):
        q = RequestQueue(maxsize=4)
        q.put(_request(0))
        q.close()
        with pytest.raises(RuntimeError):
            q.put(_request(1))
        assert q.get().request_id == 0
        assert q.get() is None           # closed + empty: no blocking

    def test_steal_matching_takes_only_same_factor(self):
        q = RequestQueue(maxsize=8)
        q.put(_request(0, pkey="p1", vkey="v1"))
        q.put(_request(1, pkey="p2", vkey="v1"))
        q.put(_request(2, pkey="p1", vkey="v2"))
        q.put(_request(3, pkey="p1", vkey="v1"))
        taken = q.steal_matching("p1", "v1", max_columns=8)
        assert [r.request_id for r in taken] == [0, 3]
        assert [q.get().request_id for _ in range(2)] == [1, 2]

    def test_steal_matching_respects_column_budget(self):
        q = RequestQueue(maxsize=8)
        q.put(_request(0, ncols=2))
        q.put(_request(1, ncols=3))
        q.put(_request(2, ncols=1))
        taken = q.steal_matching("p", "v", max_columns=3)
        # request 1 (3 cols) would overflow after request 0 (2 cols);
        # request 2 (1 col) still fits.
        assert [r.request_id for r in taken] == [0, 2]
        assert q.get().request_id == 1
