"""Tests of the service cache keys: pattern/value separation and stability."""

import numpy as np
import scipy.sparse as sp

from repro.service import matrix_keys, pattern_key, values_key
from repro.sparse import SymmetricCSC, grid_laplacian_2d, random_spd


def _shuffled_copy(a: SymmetricCSC, rng) -> SymmetricCSC:
    """Rebuild ``a`` from COO triplets in a permuted entry order."""
    coo = a.full().tocoo()
    order = rng.permutation(coo.nnz)
    rebuilt = sp.coo_matrix(
        (coo.data[order], (coo.row[order], coo.col[order])),
        shape=coo.shape)
    return SymmetricCSC.from_any(rebuilt, name="shuffled")


class TestPatternKey:
    def test_deterministic(self):
        a = grid_laplacian_2d(7, 7)
        assert pattern_key(a) == pattern_key(a)

    def test_stable_under_entry_order(self):
        """Permuted-but-identical construction hashes identically."""
        rng = np.random.default_rng(3)
        a = random_spd(40, density=0.15, seed=1)
        b = _shuffled_copy(a, rng)
        assert pattern_key(a) == pattern_key(b)
        assert values_key(a) == values_key(b)

    def test_stable_under_triangle_convention(self):
        a = grid_laplacian_2d(6, 6)
        upper = SymmetricCSC.from_any(sp.triu(a.full(), format="csc"))
        assert pattern_key(a) == pattern_key(upper)

    def test_value_change_keeps_pattern(self):
        a = grid_laplacian_2d(6, 6, shift=1e-2)
        b = grid_laplacian_2d(6, 6, shift=0.7)
        assert pattern_key(a) == pattern_key(b)
        assert values_key(a) != values_key(b)

    def test_symmetric_permutation_changes_key(self):
        """A permuted pattern is a different symbolic problem."""
        a = random_spd(30, density=0.2, seed=5)
        rng = np.random.default_rng(0)
        perm = rng.permutation(a.n)
        b = a.permuted(perm)
        assert pattern_key(a) != pattern_key(b)

    def test_different_structures_differ(self):
        assert pattern_key(grid_laplacian_2d(6, 6)) != \
            pattern_key(grid_laplacian_2d(6, 7))


class TestMatrixKeys:
    def test_matches_individual_functions(self):
        a = random_spd(25, density=0.2, seed=2)
        pk, vk = matrix_keys(a)
        assert pk == pattern_key(a)
        assert vk == values_key(a)
