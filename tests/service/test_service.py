"""End-to-end tests of :class:`repro.service.SolveService`.

Covers the acceptance criteria of the service subsystem: N structurally
identical solves run symbolic analysis exactly once; full numeric
factorization happens only on cache misses; coalesced multi-RHS solves
are bit-identical to sequential single-RHS solves.
"""

import threading
import time

import numpy as np
import pytest

from repro import ServiceConfig, SolveService, SolverOptions, SymPackSolver
from repro.service import ServiceOverloaded
from repro.sparse import grid_laplacian_2d, random_spd

OPTIONS = SolverOptions(nranks=2)


def _fast_config(**overrides) -> ServiceConfig:
    defaults = dict(workers=2, queue_depth=32)
    defaults.update(overrides)
    return ServiceConfig(**defaults)


def _rhs(a, seed, ncols=1):
    rng = np.random.default_rng(seed)
    b = rng.standard_normal((a.n, ncols))
    return b[:, 0] if ncols == 1 else b


class TestTiers:
    def test_cold_then_factor_then_refactor(self):
        a = grid_laplacian_2d(8, 8)
        a2 = grid_laplacian_2d(8, 8, shift=0.5)     # same pattern, new values
        with SolveService(OPTIONS, _fast_config(workers=1)) as svc:
            _, s1 = svc.solve(a, _rhs(a, 0))
            _, s2 = svc.solve(a, _rhs(a, 1))
            _, s3 = svc.solve(a2, _rhs(a2, 2))
            _, s4 = svc.solve(a2, _rhs(a2, 3))
        assert s1.tier == "cold"
        assert s2.tier == "factor"
        assert s3.tier == "refactor"
        assert s4.tier == "factor"
        counts = svc.counters()
        assert counts.symbolic_builds == 1
        assert counts.numeric_factorizations == 1
        assert counts.refactorizations == 1
        assert counts.requests_completed == 4

    def test_symbolic_analysis_runs_exactly_once(self):
        """N structurally identical solves share one symbolic analysis."""
        n_requests = 6
        base = grid_laplacian_2d(7, 7)
        with SolveService(OPTIONS, _fast_config()) as svc:
            futures = []
            for i in range(n_requests):
                a = grid_laplacian_2d(7, 7, shift=0.1 + 0.1 * i)
                futures.append(svc.submit(a, _rhs(a, i)))
            stats = [f.result()[1] for f in futures]
        counts = svc.counters()
        assert counts.symbolic_builds == 1
        assert counts.symbolic_entries == 1
        # Exactly one full (cold) factorization; every numeric change
        # replays the cached graph instead of rebuilding.
        assert counts.numeric_factorizations == 1
        assert sum(1 for s in stats if s.tier == "cold") == 1
        assert all(s.tier in ("cold", "refactor", "factor") for s in stats)
        del base

    def test_distinct_patterns_are_independent(self):
        a = grid_laplacian_2d(6, 6)
        b = random_spd(40, density=0.15, seed=7)
        with SolveService(OPTIONS, _fast_config(workers=1)) as svc:
            _, s1 = svc.solve(a, _rhs(a, 0))
            _, s2 = svc.solve(b, _rhs(b, 1))
            _, s3 = svc.solve(a, _rhs(a, 2))
        assert (s1.tier, s2.tier, s3.tier) == ("cold", "cold", "factor")
        counts = svc.counters()
        assert counts.symbolic_builds == 2
        assert counts.factor_entries == 2

    def test_eviction_degrades_to_symbolic_not_cold(self):
        """Evicting a factor keeps the symbolic analysis cached."""
        a = grid_laplacian_2d(6, 6)
        b = grid_laplacian_2d(9, 5)
        config = _fast_config(workers=1, factor_budget_bytes=1)
        with SolveService(OPTIONS, config) as svc:
            _, s1 = svc.solve(a, _rhs(a, 0))
            _, s2 = svc.solve(b, _rhs(b, 1))     # evicts a's factor
            _, s3 = svc.solve(a, _rhs(a, 2))
        assert (s1.tier, s2.tier) == ("cold", "cold")
        assert s3.tier == "symbolic"
        counts = svc.counters()
        assert counts.evictions >= 2
        assert counts.bytes_evicted > 0
        assert counts.symbolic_builds == 2      # never rebuilt


class TestResults:
    def test_solution_matches_direct_solver(self):
        a = random_spd(50, density=0.12, seed=3)
        b = _rhs(a, 11)
        solver = SymPackSolver(a, OPTIONS)
        solver.factorize()
        x_ref, _ = solver.solve(b)
        with SolveService(OPTIONS, _fast_config(workers=1)) as svc:
            x, stats = svc.solve(a, b)
        assert np.array_equal(x, x_ref)
        assert stats.residual is not None and stats.residual < 1e-10

    def test_multirhs_and_shape_preserved(self):
        a = grid_laplacian_2d(6, 6)
        b = _rhs(a, 0, ncols=3)
        with SolveService(OPTIONS, _fast_config(workers=1)) as svc:
            x, stats = svc.solve(a, b)
        assert x.shape == (a.n, 3)
        assert stats.coalesced_width >= 3

    def test_stats_fields(self):
        a = grid_laplacian_2d(5, 5)
        with SolveService(OPTIONS, _fast_config(workers=1)) as svc:
            _, stats = svc.solve(a, _rhs(a, 0))
        assert stats.queue_wait >= 0.0
        assert stats.factor_seconds > 0.0        # cold: paid factorization
        assert stats.solve_seconds > 0.0
        assert stats.makespan == stats.factor_seconds + stats.solve_seconds

    def test_trace_records_service_events(self):
        a = grid_laplacian_2d(5, 5)
        with SolveService(OPTIONS, _fast_config(workers=1)) as svc:
            svc.solve(a, _rhs(a, 0))
            svc.solve(a, _rhs(a, 1))
        events = svc.trace.service_events
        assert len(events) == 2
        assert [e.tier for e in events] == ["cold", "factor"]
        assert svc.counters().tiers == {"cold": 1, "factor": 1}


class TestCoalescing:
    def _run_coalesced(self, coalesce: bool):
        """One slow leader, K same-factor followers queued behind it."""
        a = random_spd(40, density=0.15, seed=9)
        rhs = [_rhs(a, seed) for seed in range(5)]
        config = _fast_config(workers=1, coalesce=coalesce, max_coalesce=8)
        svc = SolveService(OPTIONS, config)
        release = threading.Event()
        orig = svc._materialize

        def gated(req):
            release.wait(10.0)      # let followers pile up in the queue
            return orig(req)

        svc._materialize = gated
        with svc:
            futures = [svc.submit(a, b) for b in rhs]
            while len(svc._queue) < len(rhs) - 1:
                time.sleep(0.01)
            release.set()
            results = [f.result(timeout=30.0) for f in futures]
        return svc, results

    def test_coalesced_solves_bit_identical_to_sequential(self):
        a = random_spd(40, density=0.15, seed=9)
        solver = SymPackSolver(a, OPTIONS)
        solver.factorize()
        refs = [solver.solve(_rhs(a, seed))[0] for seed in range(5)]

        svc, results = self._run_coalesced(coalesce=True)
        widths = [stats.coalesced_width for _, stats in results]
        assert max(widths) == 5          # all five rode one stacked solve
        assert svc.counters().coalesced_requests == 5
        assert svc.counters().solve_runs == 1
        for (x, _), x_ref in zip(results, refs):
            assert np.array_equal(x, x_ref)

    def test_coalescing_disabled(self):
        svc, results = self._run_coalesced(coalesce=False)
        assert all(stats.coalesced_width == 1 for _, stats in results)
        assert svc.counters().coalesced_requests == 0
        assert svc.counters().solve_runs == 5

    def test_max_coalesce_bounds_width(self):
        a = random_spd(30, density=0.2, seed=4)
        rhs = [_rhs(a, seed) for seed in range(5)]
        config = _fast_config(workers=1, max_coalesce=3)
        svc = SolveService(OPTIONS, config)
        release = threading.Event()
        orig = svc._materialize

        def gated(req):
            release.wait(10.0)
            return orig(req)

        svc._materialize = gated
        with svc:
            futures = [svc.submit(a, b) for b in rhs]
            while len(svc._queue) < len(rhs) - 1:
                time.sleep(0.01)
            release.set()
            results = [f.result(timeout=30.0) for f in futures]
        assert max(stats.coalesced_width for _, stats in results) == 3


class TestBackpressure:
    def test_submit_raises_when_queue_stays_full(self):
        a = grid_laplacian_2d(5, 5)
        config = _fast_config(workers=1, queue_depth=1)
        svc = SolveService(OPTIONS, config)
        release = threading.Event()
        orig = svc._process

        def gated(req):
            release.wait(10.0)
            orig(req)

        svc._process = gated
        with svc:
            first = svc.submit(a, _rhs(a, 0))     # worker grabs, then blocks
            time.sleep(0.1)
            second = svc.submit(a, _rhs(a, 1))    # fills the queue
            with pytest.raises(ServiceOverloaded):
                svc.submit(a, _rhs(a, 2), timeout=0.05)
            release.set()
            first.result(timeout=30.0)
            second.result(timeout=30.0)


class TestApi:
    def test_submit_before_start_rejected(self):
        a = grid_laplacian_2d(4, 4)
        svc = SolveService(OPTIONS, _fast_config())
        with pytest.raises(RuntimeError):
            svc.submit(a, _rhs(a, 0))

    def test_rhs_dimension_mismatch(self):
        a = grid_laplacian_2d(4, 4)
        with SolveService(OPTIONS, _fast_config()) as svc:
            with pytest.raises(ValueError):
                svc.submit(a, np.zeros(a.n + 1))

    def test_failed_request_propagates_exception(self):
        bad = random_spd(20, density=0.2, seed=1)
        bad.lower.data[:] = 0.0              # singular: factorization fails
        bad.lower.data[0] = -1.0
        with SolveService(OPTIONS, _fast_config(workers=1)) as svc:
            fut = svc.submit(bad, np.ones(bad.n))
            with pytest.raises(Exception):
                fut.result(timeout=30.0)
        assert svc.counters().requests_failed == 1

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            ServiceConfig(workers=0)
        with pytest.raises(ValueError):
            ServiceConfig(max_coalesce=0)
