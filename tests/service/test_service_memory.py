"""Memory accounting of the solve service against its shared ledger.

The factor cache's byte budget, eviction accounting and per-request
``bytes_live``/``bytes_peak`` telemetry are all views of one
:class:`~repro.memory.MemoryLedger`; these tests pin the reconciliation
contract: ``close()`` returns live bytes to zero, and the cache's own
byte counter agrees with ledger truth once retires settle.
"""

import numpy as np

from repro import ServiceConfig, SolveService, SolverOptions
from repro.sparse import grid_laplacian_2d, random_spd

OPTIONS = SolverOptions(nranks=2)


def _config(**overrides) -> ServiceConfig:
    defaults = dict(workers=2, queue_depth=32)
    defaults.update(overrides)
    return ServiceConfig(**defaults)


def _rhs(a, seed, ncols=1):
    rng = np.random.default_rng(seed)
    b = rng.standard_normal((a.n, ncols))
    return b[:, 0] if ncols == 1 else b


class TestLedgerReconciliation:
    def test_close_returns_live_to_zero(self):
        svc = SolveService(OPTIONS, _config()).start()
        a = grid_laplacian_2d(8, 8)
        svc.solve(a, _rhs(a, 0))
        svc.solve(a, _rhs(a, 1))
        assert svc.ledger.live() > 0          # cached factor stays charged
        svc.close()
        assert svc.ledger.live() == 0
        assert svc.ledger.peak() > 0

    def test_stop_keeps_caches_readable(self):
        a = grid_laplacian_2d(8, 8)
        with SolveService(OPTIONS, _config()) as svc:
            svc.solve(a, _rhs(a, 0))
        # __exit__ calls stop(): counters and caches remain inspectable,
        # and the factor's bytes are still live until close().
        assert svc.counters().factor_entries == 1
        assert svc.ledger.live() > 0
        svc.close()
        assert svc.ledger.live() == 0

    def test_cache_counter_agrees_with_ledger(self):
        a = grid_laplacian_2d(8, 8)
        with SolveService(OPTIONS, _config(workers=1)) as svc:
            svc.solve(a, _rhs(a, 0))
            # Quiesced service: cache byte accounting equals the live
            # "factor"-labelled bytes on the ledger.
            assert svc.factor_cache.reconcile() == 0
            assert svc.factor_cache.ledger_live() == \
                svc.factor_cache.current_bytes
        svc.close()

    def test_eviction_retires_ledger_charges(self):
        mats = [grid_laplacian_2d(8, 8),
                random_spd(50, density=0.15, seed=1),
                random_spd(50, density=0.15, seed=2)]
        with SolveService(OPTIONS,
                          _config(workers=1, factor_budget_bytes=1)) as svc:
            # Budget of 1 byte: only the most recent factor is retained,
            # every predecessor is evicted and retired.
            for i, a in enumerate(mats):
                svc.solve(a, _rhs(a, i))
            counts = svc.counters()
            assert counts.evictions >= 2
            assert len(svc.factor_cache) == 1
            assert svc.factor_cache.reconcile() == 0
        svc.close()
        assert svc.ledger.live() == 0


class TestStatsSurface:
    def test_request_stats_carry_ledger_watermarks(self):
        a = grid_laplacian_2d(8, 8)
        with SolveService(OPTIONS, _config(workers=1)) as svc:
            _, s1 = svc.solve(a, _rhs(a, 0))
            _, s2 = svc.solve(a, _rhs(a, 1))
        assert s1.bytes_live > 0
        assert s1.bytes_peak >= s1.bytes_live
        assert s2.bytes_peak >= s1.bytes_peak   # peaks are monotone
        svc.close()

    def test_counters_expose_ledger_and_delta(self):
        a = grid_laplacian_2d(8, 8)
        with SolveService(OPTIONS, _config(workers=1)) as svc:
            svc.solve(a, _rhs(a, 0))
            counts = svc.counters()
            assert counts.bytes_live > 0
            assert counts.bytes_peak >= counts.bytes_live
            assert counts.factor_bytes_ledger == \
                svc.factor_cache.current_bytes
            assert counts.factor_bytes_delta == 0
        svc.close()
        assert svc.counters().bytes_live == 0

    def test_events_record_memory(self):
        a = grid_laplacian_2d(8, 8)
        with SolveService(OPTIONS, _config(workers=1)) as svc:
            svc.solve(a, _rhs(a, 0))
            with svc.trace._lock:
                events = list(svc.trace.service_events)
        assert any(ev.bytes_peak > 0 for ev in events)
        svc.close()
