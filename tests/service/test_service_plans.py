"""Compiled plans inside the solve service: caching, telemetry, eviction.

Plans live on the cached solver, so the pattern-keyed
:class:`FactorCache` carries them implicitly — eviction must retire the
plan and its arena along with the factor (ledger drains to zero), and a
re-submitted matrix must degrade to the symbolic tier and recompile,
never ride a stale plan.
"""

import numpy as np
import scipy.sparse as sp

from repro import ServiceConfig, SolveService, SolverOptions
from repro.sparse import SymmetricCSC, grid_laplacian_2d, random_spd

PLAN_OPTIONS = SolverOptions(nranks=2, plan_mode="on")


def _config(**overrides) -> ServiceConfig:
    defaults = dict(workers=1, queue_depth=32, coalesce=False)
    defaults.update(overrides)
    return ServiceConfig(**defaults)


def _rhs(a, seed, ncols=1):
    rng = np.random.default_rng(seed)
    b = rng.standard_normal((a.n, ncols))
    return b[:, 0] if ncols == 1 else b


def _shifted(a: SymmetricCSC, shift: float) -> SymmetricCSC:
    eye = sp.identity(a.n, format="csc")
    return SymmetricCSC.from_any(
        a.lower + a.lower.T - sp.diags(a.lower.diagonal()) + shift * eye)


class TestPlanTelemetry:
    def test_cold_compiles_refactor_replays(self):
        a = grid_laplacian_2d(8, 8)
        with SolveService(PLAN_OPTIONS, _config()) as svc:
            _, s0 = svc.solve(a, _rhs(a, 0))
            _, s1 = svc.solve(_shifted(a, 0.2), _rhs(a, 1))
            counts = svc.counters()
        assert s0.tier == "cold"
        assert s0.plan_compile_ms > 0          # factor + solve-sweep plans
        assert s0.plan_hits == 0               # nothing to replay yet
        assert s1.tier == "refactor"
        # Warm request: factor replay + both solve sweeps rode plans.
        assert s1.plan_hits == 3
        assert s1.plan_compile_ms == 0.0
        assert counts.plan_compiles == 3
        assert counts.plan_hits == 3
        assert counts.plan_compile_ms > 0
        svc.close()

    def test_plan_off_reports_zero(self):
        a = grid_laplacian_2d(8, 8)
        with SolveService(SolverOptions(nranks=2), _config()) as svc:
            _, s0 = svc.solve(a, _rhs(a, 0))
            _, s1 = svc.solve(_shifted(a, 0.2), _rhs(a, 1))
            counts = svc.counters()
        assert (s0.plan_hits, s1.plan_hits) == (0, 0)
        assert counts.plan_compiles == 0 and counts.plan_hits == 0
        svc.close()

    def test_plan_solution_matches_plan_off(self):
        """The service's plan tier changes performance, never bits."""
        a = random_spd(50, density=0.15, seed=1)
        shifts = (0.0, 0.2, 0.4)
        results = {}
        for mode in ("off", "on"):
            opts = SolverOptions(nranks=2, plan_mode=mode)
            with SolveService(opts, _config()) as svc:
                results[mode] = [
                    svc.solve(_shifted(a, s), _rhs(a, i))[0]
                    for i, s in enumerate(shifts)]
            svc.close()
        for x_off, x_on in zip(results["off"], results["on"]):
            assert np.array_equal(x_off, x_on)


class TestPlanEviction:
    def test_eviction_retires_plan_ledger_drains(self):
        """Evicting a factor entry retires its plan arena too."""
        mats = [grid_laplacian_2d(8, 8),
                random_spd(50, density=0.15, seed=1),
                random_spd(50, density=0.15, seed=2)]
        with SolveService(PLAN_OPTIONS,
                          _config(factor_budget_bytes=1)) as svc:
            for i, a in enumerate(mats):
                svc.solve(a, _rhs(a, i))
                # Warm refactorization populates the plan arena before
                # the next matrix evicts this entry.
                svc.solve(_shifted(a, 0.3), _rhs(a, i + 10))
            counts = svc.counters()
            assert counts.evictions >= 2
            assert len(svc.factor_cache) == 1
            assert svc.factor_cache.reconcile() == 0
        svc.close()
        assert svc.ledger.live() == 0

    def test_evicted_pattern_degrades_to_symbolic_and_recompiles(self):
        """A re-submitted evicted matrix never sees a stale plan."""
        a = grid_laplacian_2d(8, 8)
        b = random_spd(50, density=0.15, seed=1)
        with SolveService(PLAN_OPTIONS,
                          _config(factor_budget_bytes=1)) as svc:
            _, s0 = svc.solve(a, _rhs(a, 0))
            svc.solve(b, _rhs(b, 1))          # evicts a's entry (+ plan)
            compiles_before = svc.counters().plan_compiles
            x, s2 = svc.solve(a, _rhs(a, 0))
            compiles_after = svc.counters().plan_compiles
            # Identical request again: now a warm plan replay, which
            # must reproduce the freshly-recorded bits exactly — the
            # stale-plan smoke signal.
            x_ref, s3 = svc.solve(a, _rhs(a, 0))
        # The factor (and its plan) were evicted; the symbolic analysis
        # survived, so the request lands on the symbolic tier, records a
        # fresh plan, and replays nothing stale.
        assert s0.tier == "cold"
        assert s2.tier == "symbolic"
        assert s2.plan_hits == 0
        assert compiles_after > compiles_before
        assert s3.tier == "factor"
        assert np.array_equal(x, x_ref)
        svc.close()
        assert svc.ledger.live() == 0
