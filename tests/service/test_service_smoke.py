"""Service smoke test: concurrent mixed-pattern traffic.

Fires 50 concurrent requests over a handful of sparsity patterns at an
in-process :class:`SolveService` and asserts the cache hit-rate and the
per-request residuals.  This is the scenario the CI ``service-smoke``
job runs.
"""

import numpy as np

from repro import ServiceConfig, SolveService, SolverOptions
from repro.sparse import grid_laplacian_2d, random_spd

N_REQUESTS = 50


def test_concurrent_mixed_pattern_traffic():
    patterns = [
        lambda shift: grid_laplacian_2d(7, 7, shift=shift),
        lambda shift: grid_laplacian_2d(9, 5, shift=shift),
        lambda shift: random_spd(45, density=0.12, seed=3),
        lambda shift: random_spd(30, density=0.2, seed=8),
    ]
    rng = np.random.default_rng(2024)
    config = ServiceConfig(workers=4, queue_depth=N_REQUESTS,
                           max_coalesce=4)
    with SolveService(SolverOptions(nranks=2), config) as svc:
        futures = []
        for i in range(N_REQUESTS):
            make = patterns[i % len(patterns)]
            # Every third request on a pattern changes the numeric
            # values, exercising the refactorization tier too.
            a = make(0.1 + 0.2 * ((i // len(patterns)) % 3))
            b = rng.standard_normal(a.n)
            futures.append(svc.submit(a, b))
        results = [f.result(timeout=120.0) for f in futures]

    counts = svc.counters()
    assert counts.requests_completed == N_REQUESTS
    assert counts.requests_failed == 0

    # Each distinct pattern pays symbolic analysis exactly once.
    assert counts.symbolic_builds == len(patterns)
    assert counts.hit_rate() >= 1.0 - len(patterns) / N_REQUESTS

    # Every returned solution is verified.
    residuals = [stats.residual for _, stats in results]
    assert all(r is not None and r < 1e-8 for r in residuals)

    # Telemetry covered every request.
    assert sum(counts.tiers.values()) == N_REQUESTS
    assert len(svc.trace.service_events) == N_REQUESTS
