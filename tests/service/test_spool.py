"""Round-trip tests of the file-spool front-end behind serve/submit."""

import json

import numpy as np
import pytest

from repro import ServiceConfig, SolveService, SolverOptions
from repro.service import SpoolServer, submit_request, wait_result
from repro.sparse import grid_laplacian_2d, write_matrix_market


@pytest.fixture
def matrix_file(tmp_path):
    a = grid_laplacian_2d(6, 6)
    path = tmp_path / "grid.mtx"
    write_matrix_market(path, a)
    return a, path


def _server(tmp_path):
    svc = SolveService(SolverOptions(nranks=1),
                       ServiceConfig(workers=1, queue_depth=8))
    svc.start()
    return svc, SpoolServer(svc, tmp_path / "spool")


def test_round_trip_seeded_rhs(tmp_path, matrix_file):
    a, path = matrix_file
    svc, server = _server(tmp_path)
    try:
        rid = submit_request(server.spool, path, nrhs=1, seed=7)
        assert server.run(once=True) == 1
        result = wait_result(server.spool, rid, timeout=5.0)
    finally:
        svc.stop()
    assert result["ok"] is True
    assert result["tier"] == "cold"
    assert result["residual"] < 1e-10
    x = np.load(result["x_file"])
    rng = np.random.default_rng(7)
    b = rng.standard_normal((a.n, 1))
    assert np.linalg.norm(a.full() @ x - b) / np.linalg.norm(b) < 1e-10


def test_repeat_requests_hit_the_factor_cache(tmp_path, matrix_file):
    _, path = matrix_file
    svc, server = _server(tmp_path)
    try:
        rids = [submit_request(server.spool, path, seed=s) for s in range(3)]
        server.run(max_requests=3)
        tiers = [wait_result(server.spool, rid, timeout=5.0)["tier"]
                 for rid in rids]
    finally:
        svc.stop()
    assert sorted(tiers) == ["cold", "factor", "factor"]
    assert svc.counters().symbolic_builds == 1


def test_explicit_rhs_file(tmp_path, matrix_file):
    a, path = matrix_file
    rhs = np.arange(a.n, dtype=np.float64)
    rhs_file = tmp_path / "b.npy"
    np.save(rhs_file, rhs)
    svc, server = _server(tmp_path)
    try:
        rid = submit_request(server.spool, path, rhs_file=rhs_file)
        server.run(once=True)
        result = wait_result(server.spool, rid, timeout=5.0)
    finally:
        svc.stop()
    x = np.load(result["x_file"]).ravel()
    assert np.linalg.norm(a.full() @ x - rhs) / np.linalg.norm(rhs) < 1e-10


def test_bad_request_reports_error(tmp_path):
    svc, server = _server(tmp_path)
    try:
        rid = submit_request(server.spool, tmp_path / "missing.mtx")
        server.run(once=True)
        result = wait_result(server.spool, rid, timeout=5.0)
    finally:
        svc.stop()
    assert result["ok"] is False
    assert "error" in result


def test_request_files_are_consumed(tmp_path, matrix_file):
    _, path = matrix_file
    svc, server = _server(tmp_path)
    try:
        submit_request(server.spool, path)
        server.run(once=True)
    finally:
        svc.stop()
    assert list(server.inbox.glob("*.json")) == []
    assert len(list(server.done.glob("*.json"))) == 1
    payload = json.loads(next(server.done.glob("*.json")).read_text())
    assert payload["ok"] is True
