"""Unit tests for symmetric CSC storage utilities."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.sparse import (
    SymmetricCSC,
    expand_symmetric,
    lower_csc,
    permute_symmetric,
    structural_nnz_symmetric,
)


def dense_sym(n, seed=0):
    rng = np.random.default_rng(seed)
    g = rng.standard_normal((n, n))
    return g + g.T + n * np.eye(n)


class TestLowerCsc:
    def test_keeps_lower_triangle_only(self):
        a = dense_sym(6)
        low = lower_csc(a)
        assert (low.toarray() == np.tril(a)).all()

    def test_accepts_sparse_input(self):
        a = sp.csr_matrix(dense_sym(5))
        low = lower_csc(a)
        assert low.format == "csc"
        assert np.allclose(low.toarray(), np.tril(a.toarray()))

    def test_removes_explicit_zeros(self):
        a = sp.csc_matrix(np.array([[2.0, 0.0], [0.0, 3.0]]))
        a[1, 0] = 0.0  # explicit stored zero
        low = lower_csc(a)
        assert low.nnz == 2

    def test_indices_sorted(self):
        low = lower_csc(dense_sym(7))
        assert low.has_sorted_indices


class TestExpandSymmetric:
    def test_roundtrip(self):
        a = dense_sym(8)
        low = lower_csc(a)
        full = expand_symmetric(low)
        assert np.allclose(full.toarray(), a)

    def test_diagonal_not_doubled(self):
        a = np.diag([1.0, 2.0, 3.0])
        full = expand_symmetric(lower_csc(a))
        assert np.allclose(full.toarray(), a)


class TestPermuteSymmetric:
    def test_matches_dense_permutation(self):
        a = dense_sym(9, seed=2)
        perm = np.random.default_rng(1).permutation(9)
        low = permute_symmetric(lower_csc(a), perm)
        expected = a[np.ix_(perm, perm)]
        assert np.allclose(expand_symmetric(low).toarray(), expected)

    def test_rejects_bad_length(self):
        with pytest.raises(ValueError):
            permute_symmetric(lower_csc(dense_sym(4)), np.array([0, 1]))


class TestStructuralNnz:
    def test_counts_mirror(self):
        a = np.array([[2.0, 1.0, 0.0], [1.0, 3.0, 0.5], [0.0, 0.5, 4.0]])
        assert structural_nnz_symmetric(lower_csc(a)) == 7

    def test_diagonal_only(self):
        assert structural_nnz_symmetric(lower_csc(np.eye(5))) == 5


class TestSymmetricCSC:
    def test_from_any_rejects_rectangular(self):
        with pytest.raises(ValueError):
            SymmetricCSC.from_any(np.ones((2, 3)))

    def test_n_and_nnz(self, tiny_spd):
        assert tiny_spd.n == 4
        assert tiny_spd.nnz_full == 12  # 4 diag + 2*4 offdiag
        assert tiny_spd.nnz_lower == 8

    def test_to_dense_symmetric(self, tiny_spd):
        d = tiny_spd.to_dense()
        assert np.allclose(d, d.T)

    def test_column_structure(self, tiny_spd):
        rows = tiny_spd.column_structure(0)
        assert list(rows) == [0, 1, 3]

    def test_matvec_matches_dense(self, tiny_spd, rng):
        x = rng.standard_normal(4)
        assert np.allclose(tiny_spd.matvec(x), tiny_spd.to_dense() @ x)

    def test_permuted_preserves_spectrum(self, tiny_spd):
        perm = np.array([2, 0, 3, 1])
        p = tiny_spd.permuted(perm)
        ev_a = np.linalg.eigvalsh(tiny_spd.to_dense())
        ev_p = np.linalg.eigvalsh(p.to_dense())
        assert np.allclose(np.sort(ev_a), np.sort(ev_p))
