"""Unit tests for the synthetic matrix generators."""

import numpy as np
import pytest

from repro.sparse import (
    arrow_matrix,
    block_dense_spd,
    bone_like,
    flan_like,
    grid_laplacian_2d,
    grid_laplacian_3d,
    probable_spd,
    random_spd,
    stencil_27pt,
    thermal_like,
    tridiagonal_spd,
)

ALL_GENERATORS = [
    ("lap2d", lambda: grid_laplacian_2d(7, 5)),
    ("lap3d", lambda: grid_laplacian_3d(4, 4, 4)),
    ("stencil27", lambda: stencil_27pt(4, 4, 4)),
    ("flan", lambda: flan_like(scale=5)),
    ("bone", lambda: bone_like(scale=6, seed=3)),
    ("thermal", lambda: thermal_like(n=150, seed=5)),
    ("random", lambda: random_spd(40, density=0.1, seed=1)),
    ("arrow", lambda: arrow_matrix(12)),
    ("tridiag", lambda: tridiagonal_spd(20)),
    ("blockdense", lambda: block_dense_spd(3, 4)),
]


@pytest.mark.parametrize("name,factory", ALL_GENERATORS)
class TestAllGenerators:
    def test_symmetric(self, name, factory):
        a = factory()
        d = a.to_dense()
        assert np.allclose(d, d.T)

    def test_positive_definite(self, name, factory):
        a = factory()
        assert probable_spd(a)
        ev_min = np.linalg.eigvalsh(a.to_dense()).min()
        assert ev_min > 0, f"{name}: min eigenvalue {ev_min}"

    def test_deterministic(self, name, factory):
        a, b = factory(), factory()
        assert (a.lower != b.lower).nnz == 0


class TestSpecificShapes:
    def test_lap2d_dimensions(self):
        assert grid_laplacian_2d(7, 5).n == 35

    def test_lap3d_bandwidth(self):
        a = grid_laplacian_3d(3, 3, 3)
        # 7-point stencil: each row couples at most 6 neighbours.
        degrees = np.diff(a.full().indptr) - 1
        assert degrees.max() <= 6

    def test_stencil27_denser_than_7pt(self):
        a7 = grid_laplacian_3d(5, 5, 5)
        a27 = stencil_27pt(5, 5, 5)
        assert a27.nnz_full > a7.nnz_full

    def test_flan_n_is_cubed_scale(self):
        assert flan_like(scale=6).n == 216

    def test_bone_porosity_removes_points(self):
        full = bone_like(scale=8, porosity=0.0, seed=0)
        porous = bone_like(scale=8, porosity=0.4, seed=0)
        assert porous.n < full.n

    def test_thermal_sparsity_ratio(self):
        a = thermal_like(n=800, seed=1)
        # thermal2 has nnz/n ~ 7; our stand-in should be in that regime.
        assert 4.0 < a.nnz_full / a.n < 10.0

    def test_thermal_seeded_variation(self):
        a = thermal_like(n=200, seed=1)
        b = thermal_like(n=200, seed=2)
        assert (a.lower != b.lower).nnz > 0

    def test_arrow_last_row_dense(self):
        a = arrow_matrix(10)
        last_col_struct = a.full()[:, 9].nnz
        assert last_col_struct == 10

    def test_random_spd_density_scales(self):
        sparse = random_spd(60, density=0.02, seed=0)
        denser = random_spd(60, density=0.3, seed=0)
        assert denser.nnz_full > sparse.nnz_full

    def test_blockdense_block_structure(self):
        a = block_dense_spd(3, 4)
        assert a.n == 12
        d = a.to_dense()
        # Blocks are dense.
        assert np.all(d[:4, :4] != 0)
        # Far-apart blocks are uncoupled.
        assert np.all(d[:4, 8:] == 0)
