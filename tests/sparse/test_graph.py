"""Unit tests for the adjacency-graph substrate."""

import numpy as np

from repro.sparse import (
    AdjacencyGraph,
    SymmetricCSC,
    bfs_levels,
    connected_components,
    grid_laplacian_2d,
    pseudo_peripheral_vertex,
)


def path_graph(n):
    a = np.eye(n) * 2.0
    for i in range(n - 1):
        a[i, i + 1] = a[i + 1, i] = -1.0
    return AdjacencyGraph.from_symmetric(SymmetricCSC.from_any(a))


class TestConstruction:
    def test_drops_diagonal(self, tiny_spd):
        g = AdjacencyGraph.from_symmetric(tiny_spd)
        for v in range(g.n):
            assert v not in g.neighbors(v)

    def test_symmetric_neighbors(self, lap2d):
        g = AdjacencyGraph.from_symmetric(lap2d)
        for v in range(g.n):
            for u in g.neighbors(v):
                assert v in g.neighbors(int(u))

    def test_degrees_match_structure(self):
        g = path_graph(5)
        assert list(g.degrees()) == [1, 2, 2, 2, 1]


class TestSubgraph:
    def test_induced_edges_only(self):
        g = path_graph(6)
        sub, verts = g.subgraph(np.array([0, 1, 3, 4]))
        assert sub.n == 4
        # local 0-1 connected (global 0-1); local 2-3 connected (global 3-4)
        assert 1 in sub.neighbors(0)
        assert 2 not in sub.neighbors(1)  # global 1-3 not adjacent
        assert 3 in sub.neighbors(2)

    def test_vertex_mapping_returned(self):
        g = path_graph(4)
        _, verts = g.subgraph(np.array([2, 3]))
        assert list(verts) == [2, 3]


class TestBfs:
    def test_levels_of_path(self):
        g = path_graph(5)
        level, levels = bfs_levels(g, 0)
        assert list(level) == [0, 1, 2, 3, 4]
        assert len(levels) == 5

    def test_unreachable_marked(self):
        # Two disconnected edges: 0-1 and 2-3.
        a = np.eye(4) * 2
        a[0, 1] = a[1, 0] = -1
        a[2, 3] = a[3, 2] = -1
        g = AdjacencyGraph.from_symmetric(SymmetricCSC.from_any(a))
        level, _ = bfs_levels(g, 0)
        assert level[2] == -1 and level[3] == -1


class TestComponents:
    def test_single_component(self, lap2d):
        g = AdjacencyGraph.from_symmetric(lap2d)
        comps = connected_components(g)
        assert len(comps) == 1
        assert comps[0].size == g.n

    def test_multiple_components(self):
        a = np.eye(5) * 2
        a[0, 1] = a[1, 0] = -1
        g = AdjacencyGraph.from_symmetric(SymmetricCSC.from_any(a))
        comps = connected_components(g)
        assert [c.size for c in comps] == [2, 1, 1, 1]


class TestPseudoPeripheral:
    def test_path_endpoint(self):
        g = path_graph(9)
        v = pseudo_peripheral_vertex(g, 4)
        assert v in (0, 8)

    def test_grid_corner_has_max_ecc(self):
        g = AdjacencyGraph.from_symmetric(grid_laplacian_2d(5, 5))
        v = pseudo_peripheral_vertex(g, 12)  # start from the center
        _, levels = bfs_levels(g, v)
        # Eccentricity of a 5x5 grid from a corner is 8; from center it is 4.
        assert len(levels) - 1 >= 7
