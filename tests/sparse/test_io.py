"""Round-trip tests for Matrix Market and Rutherford-Boeing I/O."""

import io

import numpy as np
import pytest

from repro.sparse import (
    random_spd,
    read_matrix_market,
    read_rutherford_boeing,
    tridiagonal_spd,
    write_matrix_market,
    write_rutherford_boeing,
)


class TestMatrixMarket:
    def test_roundtrip_file(self, tmp_path, tiny_spd):
        path = tmp_path / "m.mtx"
        write_matrix_market(path, tiny_spd, comment="test matrix")
        back = read_matrix_market(path)
        assert np.allclose(back.to_dense(), tiny_spd.to_dense())

    def test_roundtrip_random(self, tmp_path):
        a = random_spd(25, density=0.2, seed=9)
        path = tmp_path / "r.mtx"
        write_matrix_market(path, a)
        back = read_matrix_market(path)
        assert np.allclose(back.to_dense(), a.to_dense())

    def test_reads_general_symmetric(self):
        text = io.StringIO(
            "%%MatrixMarket matrix coordinate real general\n"
            "2 2 4\n1 1 2.0\n2 2 3.0\n1 2 -1.0\n2 1 -1.0\n"
        )
        a = read_matrix_market(text)
        assert np.allclose(a.to_dense(), [[2.0, -1.0], [-1.0, 3.0]])

    def test_rejects_asymmetric_general(self):
        text = io.StringIO(
            "%%MatrixMarket matrix coordinate real general\n"
            "2 2 3\n1 1 2.0\n2 2 3.0\n1 2 -1.0\n"
        )
        with pytest.raises(ValueError, match="not symmetric"):
            read_matrix_market(text)

    def test_reads_pattern(self):
        text = io.StringIO(
            "%%MatrixMarket matrix coordinate pattern symmetric\n"
            "3 3 4\n1 1\n2 2\n3 3\n3 1\n"
        )
        a = read_matrix_market(text)
        assert a.nnz_full == 5

    def test_rejects_bad_header(self):
        with pytest.raises(ValueError, match="header"):
            read_matrix_market(io.StringIO("garbage\n1 1 1\n1 1 1.0\n"))

    def test_rejects_rectangular(self):
        text = io.StringIO(
            "%%MatrixMarket matrix coordinate real general\n2 3 1\n1 1 1.0\n"
        )
        with pytest.raises(ValueError, match="square"):
            read_matrix_market(text)

    def test_comments_skipped(self, tmp_path, tiny_spd):
        path = tmp_path / "c.mtx"
        write_matrix_market(path, tiny_spd, comment="line one\nline two")
        back = read_matrix_market(path)
        assert back.n == 4


class TestRutherfordBoeing:
    def test_roundtrip(self, tmp_path, tiny_spd):
        path = tmp_path / "m.rb"
        write_rutherford_boeing(path, tiny_spd)
        back = read_rutherford_boeing(path)
        assert np.allclose(back.to_dense(), tiny_spd.to_dense())

    def test_roundtrip_larger(self, tmp_path):
        a = random_spd(40, density=0.15, seed=11)
        path = tmp_path / "big.rb"
        write_rutherford_boeing(path, a)
        back = read_rutherford_boeing(path)
        assert np.allclose(back.to_dense(), a.to_dense())

    def test_roundtrip_tridiag_values(self, tmp_path):
        a = tridiagonal_spd(12)
        path = tmp_path / "t.rb"
        write_rutherford_boeing(path, a)
        back = read_rutherford_boeing(path)
        assert np.allclose(back.lower.toarray(), a.lower.toarray())

    def test_title_preserved_in_header(self, tmp_path, tiny_spd):
        path = tmp_path / "titled.rb"
        write_rutherford_boeing(path, tiny_spd, title="hello", key="K1")
        first = path.read_text().splitlines()[0]
        assert first.startswith("hello")

    def test_rejects_unsupported_type(self, tmp_path):
        path = tmp_path / "bad.rb"
        path.write_text("t\n 1 1 1 1\ncua 2 2 2 0\n(8I10) (8I10) (4E20.12)\n")
        with pytest.raises(ValueError, match="unsupported"):
            read_rutherford_boeing(path)

    def test_rejects_truncated(self, tmp_path):
        path = tmp_path / "short.rb"
        path.write_text("only one line\n")
        with pytest.raises(ValueError, match="truncated"):
            read_rutherford_boeing(path)


class TestCrossFormat:
    def test_mm_and_rb_agree(self, tmp_path):
        a = random_spd(20, density=0.25, seed=21)
        write_matrix_market(tmp_path / "x.mtx", a)
        write_rutherford_boeing(tmp_path / "x.rb", a)
        from_mm = read_matrix_market(tmp_path / "x.mtx")
        from_rb = read_rutherford_boeing(tmp_path / "x.rb")
        assert np.allclose(from_mm.to_dense(), from_rb.to_dense())
