"""Tests of the SuiteSparse registry/local loader."""

import numpy as np
import pytest

from repro.sparse import random_spd, write_matrix_market, write_rutherford_boeing
from repro.sparse.suitesparse import (
    PAPER_MATRICES,
    find_matrix_file,
    load_suitesparse,
)


class TestRegistry:
    def test_paper_matrices_present(self):
        assert set(PAPER_MATRICES) == {"Flan_1565", "boneS10", "thermal2"}

    def test_published_sizes(self):
        assert PAPER_MATRICES["Flan_1565"].nnz == 114_165_372
        assert PAPER_MATRICES["boneS10"].n == 914_898

    def test_urls_point_at_collection(self):
        for entry in PAPER_MATRICES.values():
            assert entry.url.startswith("https://sparse.tamu.edu/")


class TestLoader:
    def test_loads_mtx(self, tmp_path):
        a = random_spd(20, density=0.2, seed=1)
        write_matrix_market(tmp_path / "mymatrix.mtx", a)
        loaded = load_suitesparse(tmp_path, "mymatrix")
        assert loaded.name == "mymatrix"
        assert np.allclose(loaded.to_dense(), a.to_dense())

    def test_loads_rb(self, tmp_path):
        a = random_spd(15, density=0.2, seed=2)
        write_rutherford_boeing(tmp_path / "other.rb", a)
        loaded = load_suitesparse(tmp_path, "other")
        assert loaded.n == 15

    def test_finds_nested_files(self, tmp_path):
        a = random_spd(10, density=0.3, seed=3)
        nested = tmp_path / "Janna" / "sub"
        nested.mkdir(parents=True)
        write_matrix_market(nested / "deep.mtx", a)
        assert find_matrix_file(tmp_path, "deep") is not None
        assert load_suitesparse(tmp_path, "deep").n == 10

    def test_missing_gives_download_hint(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="sparse.tamu.edu"):
            load_suitesparse(tmp_path, "thermal2")

    def test_missing_unknown_no_hint(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_suitesparse(tmp_path, "nd24k")

    def test_shape_verification(self, tmp_path):
        """A file claiming to be thermal2 but with the wrong n is refused."""
        a = random_spd(12, density=0.3, seed=4)
        write_matrix_market(tmp_path / "thermal2.mtx", a)
        with pytest.raises(ValueError, match="published"):
            load_suitesparse(tmp_path, "thermal2")
        loaded = load_suitesparse(tmp_path, "thermal2", verify_shape=False)
        assert loaded.n == 12
