"""Unit tests for SPD input validation."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.sparse import (
    NotSymmetricError,
    SymmetricCSC,
    check_finite,
    check_square,
    check_symmetric,
    probable_spd,
)


class TestCheckSquare:
    def test_accepts_square(self):
        check_square(np.eye(3))

    def test_rejects_rectangular(self):
        with pytest.raises(ValueError):
            check_square(np.ones((2, 4)))


class TestCheckSymmetric:
    def test_accepts_symmetric(self):
        check_symmetric(sp.csc_matrix(np.array([[2.0, 1.0], [1.0, 3.0]])))

    def test_rejects_asymmetric(self):
        with pytest.raises(NotSymmetricError):
            check_symmetric(sp.csc_matrix(np.array([[2.0, 1.0], [0.5, 3.0]])))

    def test_tolerates_roundoff(self):
        a = np.array([[2.0, 1.0], [1.0 + 1e-16, 3.0]])
        check_symmetric(sp.csc_matrix(a))


class TestCheckFinite:
    def test_accepts_finite(self, tiny_spd):
        check_finite(tiny_spd)

    def test_rejects_nan(self):
        a = SymmetricCSC.from_any(np.array([[1.0, 0.0], [0.0, np.nan]]))
        with pytest.raises(ValueError, match="non-finite"):
            check_finite(a)


class TestProbableSpd:
    def test_positive_diagonal_passes(self, tiny_spd):
        assert probable_spd(tiny_spd)

    def test_negative_diagonal_fails(self):
        a = SymmetricCSC.from_any(np.array([[1.0, 0.0], [0.0, -2.0]]))
        assert not probable_spd(a)

    def test_missing_diagonal_fails(self):
        # Structurally zero diagonal entry.
        a = SymmetricCSC.from_any(np.array([[1.0, 1.0], [1.0, 0.0]]))
        assert not probable_spd(a)
