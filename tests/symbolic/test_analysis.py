"""Tests for the symbolic-analysis facade."""

import numpy as np

from repro.ordering import Permutation
from repro.symbolic import AmalgamationOptions, analyze


class TestAnalyze:
    def test_default_pipeline(self, lap2d):
        an = analyze(lap2d)
        assert an.n == lap2d.n
        assert an.nsup >= 1
        assert an.factor_nnz() >= lap2d.nnz_lower

    def test_explicit_permutation(self, lap2d, rng):
        perm = Permutation(rng.permutation(lap2d.n))
        an = analyze(lap2d, ordering=perm)
        assert np.array_equal(an.perm.perm, perm.perm)

    def test_ordering_by_name(self, lap2d):
        an_nat = analyze(lap2d, ordering="natural")
        an_nd = analyze(lap2d, ordering="nd")
        assert an_nd.symbolic.nnz <= an_nat.symbolic.nnz

    def test_stats_keys(self, lap2d):
        st = analyze(lap2d).stats()
        for key in ("n", "nnz_A", "nnz_L", "fill_in", "nsup", "n_blocks",
                    "factor_flops", "max_supernode_width"):
            assert key in st

    def test_flops_positive_and_superlinear(self, lap2d, lap3d):
        f2 = analyze(lap2d).factor_flops()
        f3 = analyze(lap3d).factor_flops()
        assert f2 > 0 and f3 > 0

    def test_amalgamation_flag_respected(self, lap2d):
        fund = analyze(lap2d, amalgamation=AmalgamationOptions(enabled=False))
        relaxed = analyze(lap2d, amalgamation=AmalgamationOptions(
            enabled=True, max_zeros_ratio=0.4))
        assert relaxed.nsup <= fund.nsup

    def test_permuted_matrix_spectrum_preserved(self, tiny_spd):
        an = analyze(tiny_spd)
        ev_orig = np.linalg.eigvalsh(tiny_spd.to_dense())
        ev_perm = np.linalg.eigvalsh(an.a_perm.to_dense())
        assert np.allclose(np.sort(ev_orig), np.sort(ev_perm))
