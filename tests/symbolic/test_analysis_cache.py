"""AnalysisCache: round-trip, value rebinding, eviction, corrupt files."""

import numpy as np
import pytest

from repro.sparse import random_spd, thermal_like
from repro.symbolic import AnalysisCache, analyze
from repro.symbolic.cache import analysis_from_arrays, analysis_to_arrays


def _assert_same_analysis(x, y):
    assert np.array_equal(x.perm.perm, y.perm.perm)
    assert np.array_equal(x.symbolic.struct_ptr, y.symbolic.struct_ptr)
    assert np.array_equal(x.symbolic.struct_rows, y.symbolic.struct_rows)
    assert np.array_equal(x.supernodes.sn_start, y.supernodes.sn_start)
    assert x.blocks.n_blocks() == y.blocks.n_blocks()
    for per_x, per_y in zip(x.blocks.blocks, y.blocks.blocks):
        for u, v in zip(per_x, per_y):
            assert (u.src, u.tgt, u.offset) == (v.src, v.tgt, v.offset)
            assert np.array_equal(u.rows, v.rows)
    assert np.array_equal(x.a_perm.lower.data, y.a_perm.lower.data)


class TestArrayRoundTrip:
    def test_round_trip_rebuilds_everything(self):
        a = thermal_like(n=200)
        analysis = analyze(a)
        rebuilt = analysis_from_arrays(a, analysis_to_arrays(analysis))
        _assert_same_analysis(analysis, rebuilt)
        # a rebuilt analysis reports an all-zero compute breakdown
        assert rebuilt.phase_seconds["ordering"] == 0.0
        assert rebuilt.phase_seconds["symbolic"] == 0.0
        assert rebuilt.phase_seconds["blocks"] == 0.0

    def test_version_mismatch_raises(self):
        a = random_spd(40, density=0.2, seed=1)
        arrays = analysis_to_arrays(analyze(a))
        arrays["version"] = np.int64(999)
        with pytest.raises(ValueError, match="format"):
            analysis_from_arrays(a, arrays)


class TestAnalysisCache:
    def test_memory_hit_rebinds_values(self):
        a = random_spd(60, density=0.15, seed=2)
        cache = AnalysisCache()
        assert cache.get(a) is None
        cache.put(a, analyze(a))
        # same pattern, different values
        b = random_spd(60, density=0.15, seed=2)
        b.lower.data[:] *= 2.0
        hit = cache.get(b)
        assert hit is not None
        _assert_same_analysis(hit, analyze(b))
        stats = cache.stats()
        assert stats == {"mem_hits": 1, "disk_hits": 0, "misses": 1,
                         "puts": 1, "evictions": 0, "entries": 1}

    def test_disk_hit_from_fresh_instance(self, tmp_path):
        a = thermal_like(n=180)
        writer = AnalysisCache(tmp_path)
        writer.put(a, analyze(a))
        reader = AnalysisCache(tmp_path)  # cold memory tier
        hit = reader.get(a)
        assert hit is not None
        _assert_same_analysis(hit, analyze(a))
        stats = reader.stats()
        assert stats["disk_hits"] == 1 and stats["mem_hits"] == 0
        # the disk hit was promoted: second get is a memory hit
        assert reader.get(a) is not None
        assert reader.stats()["mem_hits"] == 1

    def test_corrupt_file_is_a_miss(self, tmp_path):
        a = random_spd(50, density=0.2, seed=3)
        cache = AnalysisCache(tmp_path)
        key = cache.put(a, analyze(a))
        path = tmp_path / f"{key}.npz"
        path.write_bytes(b"this is not an npz archive")
        fresh = AnalysisCache(tmp_path)
        assert fresh.get(a) is None
        assert fresh.stats()["misses"] == 1

    def test_lru_eviction(self):
        cache = AnalysisCache(max_entries=2)
        mats = [random_spd(30 + i, density=0.2, seed=i) for i in range(3)]
        for m in mats:
            cache.put(m, analyze(m))
        assert len(cache) == 2
        assert cache.stats()["evictions"] == 1
        assert cache.get(mats[0]) is None      # evicted (oldest)
        assert cache.get(mats[2]) is not None  # newest survives

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError, match="max_entries"):
            AnalysisCache(max_entries=0)

    def test_memory_only_cache_has_no_disk_tier(self):
        a = random_spd(30, density=0.2, seed=5)
        cache = AnalysisCache()
        cache.put(a, analyze(a))
        with pytest.raises(ValueError, match="directory"):
            cache._path("deadbeef")


class TestSolverIntegration:
    def test_solver_hit_skips_cold_path_and_keeps_factors(self, tmp_path):
        from repro import CPU_ONLY, SolverOptions, SymPackSolver

        a = thermal_like(n=250)
        rng = np.random.default_rng(0)
        b = rng.standard_normal(a.n)

        cold_opts = SolverOptions(nranks=2, offload=CPU_ONLY)
        s0 = SymPackSolver(a, cold_opts)
        info0 = s0.factorize()
        x0, _ = s0.solve(b)
        l0 = s0.storage.to_sparse_factor().toarray()
        assert info0.ordering_ms > 0.0
        assert info0.first_des_ms > 0.0

        cache = AnalysisCache(tmp_path)
        warm_opts = SolverOptions(nranks=2, offload=CPU_ONLY,
                                  analysis_cache=cache)
        s1 = SymPackSolver(a, warm_opts)   # miss: publishes
        s1.factorize()
        assert cache.stats()["puts"] == 1

        s2 = SymPackSolver(a, warm_opts)   # memory hit
        info2 = s2.factorize()
        x2, _ = s2.solve(b)
        l2 = s2.storage.to_sparse_factor().toarray()
        assert cache.stats()["mem_hits"] == 1
        # hit path skips ordering/symbolic/blocks entirely
        assert info2.ordering_ms == 0.0
        assert info2.symbolic_ms == 0.0
        assert info2.blocks_ms == 0.0
        assert "cache_load" in s2.analysis.phase_seconds
        # and the numeric results are bit-identical to the cold run
        assert np.array_equal(l0, l2)
        assert np.array_equal(x0, x2)
        # the trace carries the same breakdown
        phases = s2.trace.phase_breakdown()
        assert phases["ordering_ms"] == 0.0
        assert phases["first_des_ms"] > 0.0

    def test_service_symbolic_tier_rides_analysis_cache(self, tmp_path):
        from repro import CPU_ONLY, SolverOptions
        from repro.service import ServiceConfig, SolveService

        a = thermal_like(n=200)
        rng = np.random.default_rng(1)
        b = rng.standard_normal(a.n)
        opts = SolverOptions(nranks=2, offload=CPU_ONLY)
        cfg = ServiceConfig(workers=1,
                            analysis_cache_dir=str(tmp_path))

        with SolveService(opts, cfg) as svc:
            x1, _ = svc.solve(a, b)
            counters = svc.counters()
        assert counters.analysis_cache["puts"] == 1
        assert counters.tiers.get("cold") == 1

        # A fresh service (new process stand-in) resolves the same
        # pattern at the symbolic tier straight from disk.
        with SolveService(opts, cfg) as svc2:
            x2, _ = svc2.solve(a, b)
            counters2 = svc2.counters()
        assert counters2.analysis_cache["disk_hits"] == 1
        assert counters2.tiers.get("symbolic") == 1
        assert "cold" not in counters2.tiers
        assert np.array_equal(x1, x2)
