"""Unit tests for Algorithm 2 block partitioning (paper Fig. 1)."""

import numpy as np
import pytest

from repro.sparse import grid_laplacian_2d, random_spd
from repro.symbolic import (
    AmalgamationOptions,
    SymbolicL,
    detect_supernodes,
    partition_blocks,
)


def make_blocks(a, relaxed=False):
    sym = SymbolicL(a.lower)
    part = detect_supernodes(sym, AmalgamationOptions(enabled=relaxed))
    return part, partition_blocks(part)


class TestBlockInvariants:
    def test_blocks_cover_struct_exactly(self, corner_case):
        part, bp = make_blocks(corner_case)
        for s in range(part.nsup):
            covered = (np.concatenate([b.rows for b in bp.blocks[s]])
                       if bp.blocks[s] else np.empty(0, np.int64))
            assert np.array_equal(covered, part.structs[s])

    def test_block_rows_within_target(self, corner_case):
        part, bp = make_blocks(corner_case)
        for s in range(part.nsup):
            for b in bp.blocks[s]:
                assert np.all(part.sn_of_col[b.rows] == b.tgt)

    def test_targets_strictly_ascending(self, corner_case):
        part, bp = make_blocks(corner_case)
        for s in range(part.nsup):
            tgts = [b.tgt for b in bp.blocks[s]]
            assert tgts == sorted(tgts)
            assert len(tgts) == len(set(tgts)), "one block per target"

    def test_offsets_consistent(self, corner_case):
        part, bp = make_blocks(corner_case)
        for s in range(part.nsup):
            pos = 0
            for b in bp.blocks[s]:
                assert b.offset == pos
                pos += b.nrows

    def test_src_recorded(self, corner_case):
        _, bp = make_blocks(corner_case)
        for s in range(bp.nsup):
            for b in bp.blocks[s]:
                assert b.src == s

    def test_relaxed_partition_same_invariants(self):
        a = grid_laplacian_2d(11, 11)
        part, bp = make_blocks(a, relaxed=True)
        for s in range(part.nsup):
            covered = (np.concatenate([b.rows for b in bp.blocks[s]])
                       if bp.blocks[s] else np.empty(0, np.int64))
            assert np.array_equal(covered, part.structs[s])


class TestUpdateTargetsExist:
    """The fan-out update U[j,s,t] requires block B[j,t] to exist whenever
    supernode s has blocks targeting both j and t (j >= t) — the symbolic
    guarantee the task-graph builder relies on."""

    @pytest.mark.parametrize("seed", range(4))
    def test_pairwise_targets_present(self, seed):
        a = random_spd(40, density=0.12, seed=seed)
        part, bp = make_blocks(a)
        for s in range(part.nsup):
            targets = bp.targets(s)
            index = {b.tgt: b for b in bp.blocks[s]}
            for bj, t in enumerate(targets):
                for j in targets[bj + 1:]:
                    tgt_block = next(
                        (b for b in bp.blocks[t] if b.tgt == j), None)
                    assert tgt_block is not None, f"B[{j},{t}] missing"
                    # and the rows to scatter must all be present
                    rows_j = index[j].rows
                    assert np.isin(rows_j, tgt_block.rows).all()


class TestAccessors:
    def test_block_of_lookup(self, lap2d):
        part, bp = make_blocks(lap2d)
        for s in range(part.nsup):
            for b in bp.blocks[s]:
                assert bp.block_of(s, b.tgt) is b

    def test_block_of_missing_raises(self, lap2d):
        part, bp = make_blocks(lap2d)
        with pytest.raises(KeyError):
            bp.block_of(0, 10**6)

    def test_n_blocks_counts_diagonals(self, lap2d):
        part, bp = make_blocks(lap2d)
        assert bp.n_blocks() == part.nsup + sum(
            len(b) for b in bp.blocks)
