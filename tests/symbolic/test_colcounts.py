"""Cross-validation of the two column-count algorithms.

The structure-merge counts (``column_counts``) and the Gilbert-Ng-Peyton
skeleton counts (``column_counts_gnp``) are independent derivations of the
same quantity; they must agree exactly on every input.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
import scipy.sparse as sp

from repro.sparse import SymmetricCSC, lower_csc, random_spd, tridiagonal_spd
from repro.symbolic import column_counts
from repro.symbolic.colcounts import column_counts_gnp


class TestAgainstStructureMerge:
    def test_corner_cases(self, corner_case):
        a = corner_case
        assert np.array_equal(column_counts_gnp(a.lower),
                              column_counts(a.lower))

    @pytest.mark.parametrize("seed", range(8))
    def test_random_matrices(self, seed):
        a = random_spd(40, density=0.1 + 0.05 * seed, seed=seed)
        assert np.array_equal(column_counts_gnp(a.lower),
                              column_counts(a.lower))

    def test_tridiagonal_counts_exact(self):
        a = tridiagonal_spd(12)
        counts = column_counts_gnp(a.lower)
        expected = np.r_[np.full(11, 2), 1]
        assert np.array_equal(counts, expected)

    def test_diagonal_all_ones(self):
        a = SymmetricCSC.from_any(np.diag([1.0, 2.0, 3.0]))
        assert np.array_equal(column_counts_gnp(a.lower), [1, 1, 1])

    def test_dense_counts_descending(self):
        g = np.random.default_rng(0).standard_normal((8, 8))
        a = SymmetricCSC.from_any(g @ g.T + 8 * np.eye(8))
        counts = column_counts_gnp(a.lower)
        assert np.array_equal(counts, np.arange(8, 0, -1))


@st.composite
def spd_patterns(draw, max_n=22):
    n = draw(st.integers(min_value=1, max_value=max_n))
    density = draw(st.floats(min_value=0.0, max_value=0.6))
    seed = draw(st.integers(min_value=0, max_value=2**31))
    rng = np.random.default_rng(seed)
    nnz = int(density * n * n)
    i = rng.integers(0, n, nnz)
    j = rng.integers(0, n, nnz)
    m = sp.coo_matrix((np.ones(nnz), (i, j)), shape=(n, n)).tocsc()
    m = m + m.T
    a = m + sp.diags(np.asarray(m.sum(axis=1)).ravel() + 1.0)
    return SymmetricCSC(lower_csc(a))


class TestPropertyAgreement:
    @given(a=spd_patterns())
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_always_agrees(self, a):
        assert np.array_equal(column_counts_gnp(a.lower),
                              column_counts(a.lower))
