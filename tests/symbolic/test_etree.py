"""Unit tests for the elimination tree."""

import numpy as np
import pytest

from repro.sparse import SymmetricCSC, lower_csc, random_spd, tridiagonal_spd
from repro.symbolic import (
    children_lists,
    elimination_tree,
    first_descendants,
    is_valid_etree,
    postorder,
    tree_levels,
)


def brute_force_etree(a_dense):
    """Reference etree via explicit dense symbolic factorization."""
    n = a_dense.shape[0]
    pattern = (a_dense != 0).astype(float)
    # Symbolic right-looking factorization on the pattern.
    for j in range(n):
        rows = [i for i in range(j + 1, n) if pattern[i, j]]
        for ii in rows:
            for kk in rows:
                if kk <= ii:
                    pattern[ii, kk] = 1.0
    parent = np.full(n, -1, dtype=np.int64)
    for j in range(n):
        below = [i for i in range(j + 1, n) if pattern[i, j]]
        if below:
            parent[j] = below[0]
    return parent


class TestAgainstBruteForce:
    @pytest.mark.parametrize("seed", range(6))
    def test_random_matrices(self, seed):
        a = random_spd(18, density=0.15, seed=seed)
        parent = elimination_tree(a.lower)
        expected = brute_force_etree(a.to_dense())
        assert np.array_equal(parent, expected)

    def test_counterexample_for_column_major_processing(self):
        """A(2,0), A(5,0), A(4,2): parent of 2 must be 4, not 5.

        Guards against the subtle bug where Liu's algorithm is run in
        column-major instead of row-major order.
        """
        a = np.eye(6) * 10
        for i, j in [(2, 0), (5, 0), (4, 2)]:
            a[i, j] = a[j, i] = -1
        parent = elimination_tree(lower_csc(a))
        assert parent[0] == 2
        assert parent[2] == 4
        expected = brute_force_etree(a)
        assert np.array_equal(parent, expected)

    def test_tridiagonal_is_a_path(self):
        a = tridiagonal_spd(10)
        parent = elimination_tree(a.lower)
        assert np.array_equal(parent[:-1], np.arange(1, 10))
        assert parent[-1] == -1

    def test_diagonal_matrix_is_forest_of_roots(self):
        a = SymmetricCSC.from_any(np.diag([1.0, 2.0, 3.0]))
        parent = elimination_tree(a.lower)
        assert np.array_equal(parent, [-1, -1, -1])


class TestTreeUtilities:
    @pytest.fixture
    def parent(self):
        a = random_spd(25, density=0.12, seed=42)
        return elimination_tree(a.lower)

    def test_postorder_children_before_parents(self, parent):
        post = postorder(parent)
        rank = np.empty(parent.size, dtype=int)
        rank[post] = np.arange(parent.size)
        for v in range(parent.size):
            if parent[v] != -1:
                assert rank[v] < rank[parent[v]]

    def test_postorder_is_permutation(self, parent):
        post = postorder(parent)
        assert sorted(post.tolist()) == list(range(parent.size))

    def test_levels_parent_child_offset(self, parent):
        level = tree_levels(parent)
        for v in range(parent.size):
            if parent[v] != -1:
                assert level[v] == level[parent[v]] + 1
            else:
                assert level[v] == 0

    def test_children_lists_inverse_of_parent(self, parent):
        kids = children_lists(parent)
        for p, children in enumerate(kids):
            for c in children:
                assert parent[c] == p

    def test_first_descendants_bound(self, parent):
        post = postorder(parent)
        first = first_descendants(parent, post)
        rank = np.empty(parent.size, dtype=int)
        rank[post] = np.arange(parent.size)
        for v in range(parent.size):
            assert first[v] <= rank[v]

    def test_is_valid_etree_accepts_real(self, parent):
        assert is_valid_etree(parent)

    def test_is_valid_etree_rejects_backward_parent(self):
        assert not is_valid_etree(np.array([1, 0, -1]))

    def test_postorder_rejects_cycle(self):
        # parent[2] = 3, parent[3] = ... cannot build a cycle with
        # parent > child constraint, so use an out-of-range forest check.
        assert not is_valid_etree(np.array([5, -1, -1]))
