"""Tests of the opt-in etree postordering (equivalent reordering)."""

import numpy as np

from repro import CPU_ONLY, SolverOptions, SymPackSolver
from repro.ordering import Permutation, is_permutation
from repro.sparse import bone_like, random_spd
from repro.symbolic import analyze, elimination_tree, postorder


class TestEquivalentReordering:
    def test_fill_unchanged(self, corner_case):
        plain = analyze(corner_case, postorder_etree=False)
        posted = analyze(corner_case, postorder_etree=True)
        assert plain.symbolic.nnz == posted.symbolic.nnz

    def test_permutation_valid(self, corner_case):
        posted = analyze(corner_case, postorder_etree=True)
        assert is_permutation(posted.perm.perm)

    def test_resulting_etree_is_postordered(self):
        """After the reordering, every parent is visited after all of its
        subtree: parent[j] > j AND the identity is already a postorder."""
        a = random_spd(40, density=0.12, seed=11)
        posted = analyze(a, postorder_etree=True)
        parent = elimination_tree(posted.a_perm.lower)
        post = postorder(parent)
        # The etree of a postordered matrix has the property that the
        # natural order is a valid postorder: descendants form intervals.
        first = np.arange(parent.size)
        for j in range(parent.size):
            p = parent[j]
            if p >= 0:
                first[p] = min(first[p], first[j])
        for j in range(parent.size):
            p = parent[j]
            if p >= 0:
                # subtree of p is the contiguous interval [first[p], p]
                assert first[p] <= j < p

    def test_solver_correct_with_postordering(self, rng):
        a = bone_like(scale=8, seed=1)
        solver = SymPackSolver(a, SolverOptions(nranks=3, offload=CPU_ONLY))
        # Re-run the analysis with postordering and swap it in.
        solver.analysis = analyze(a, postorder_etree=True)
        solver.factorize()
        b = rng.standard_normal(a.n)
        x, _ = solver.solve(b)
        assert solver.residual_norm(x, b) < 1e-10

    def test_explicit_permutation_composes(self, rng):
        a = random_spd(25, density=0.2, seed=3)
        base = Permutation(rng.permutation(a.n))
        posted = analyze(a, ordering=base, postorder_etree=True)
        plain = analyze(a, ordering=base, postorder_etree=False)
        assert plain.symbolic.nnz == posted.symbolic.nnz

    def test_supernode_count_not_worse(self):
        """Postordering makes subtrees contiguous; fundamental supernode
        detection must not get worse on a scrambled ordering."""
        a = random_spd(50, density=0.1, seed=7)
        rng = np.random.default_rng(0)
        scrambled = Permutation(rng.permutation(a.n))
        from repro.symbolic import AmalgamationOptions
        off = AmalgamationOptions(enabled=False)
        plain = analyze(a, ordering=scrambled, amalgamation=off)
        posted = analyze(a, ordering=scrambled, amalgamation=off,
                         postorder_etree=True)
        assert posted.nsup <= plain.nsup
