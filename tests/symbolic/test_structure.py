"""Unit tests for symbolic column structures of L."""

import numpy as np
import pytest
import scipy.linalg as la

from repro.sparse import random_spd, tridiagonal_spd
from repro.symbolic import SymbolicL, column_counts, column_structures, factor_nnz


def dense_factor_pattern(a_dense):
    """Structure of L from an actual dense Cholesky on a shifted pattern.

    Uses a numeric factorization of a structurally-identical SPD matrix
    with random values (no accidental cancellation, entries generic).
    """
    n = a_dense.shape[0]
    rng = np.random.default_rng(99)
    pattern = (a_dense != 0)
    vals = np.where(pattern, rng.uniform(0.1, 1.0, (n, n)), 0.0)
    vals = (vals + vals.T) / 2
    vals += np.diag(np.abs(vals).sum(axis=1) + 1.0)
    l = la.cholesky(vals, lower=True)
    return np.abs(l) > 1e-14


class TestColumnStructures:
    @pytest.mark.parametrize("seed", range(5))
    def test_matches_numeric_factor(self, seed):
        a = random_spd(20, density=0.18, seed=seed)
        structs = column_structures(a.lower)
        lpat = dense_factor_pattern(a.to_dense())
        for j in range(a.n):
            expected = np.flatnonzero(lpat[:, j])
            assert np.array_equal(structs[j], expected), f"column {j}"

    def test_diagonal_always_present(self, lap2d):
        structs = column_structures(lap2d.lower)
        for j, s in enumerate(structs):
            assert s[0] == j

    def test_rows_are_ancestors(self, corner_case):
        sym = SymbolicL(corner_case.lower)
        for j, s in enumerate(sym.structs):
            for i in s[1:]:
                # walk up from j; i must appear on the ancestor path
                node = j
                seen = False
                while node != -1:
                    if node == i:
                        seen = True
                        break
                    node = sym.parent[node]
                assert seen, f"row {i} of column {j} is not an ancestor"

    def test_tridiagonal_no_fill(self):
        a = tridiagonal_spd(15)
        assert SymbolicL(a.lower).fill_in() == 0

    def test_counts_match_structures(self, lap3d):
        counts = column_counts(lap3d.lower)
        structs = column_structures(lap3d.lower)
        assert np.array_equal(counts, [s.size for s in structs])

    def test_factor_nnz_totals(self, lap2d):
        assert factor_nnz(lap2d.lower) == column_counts(lap2d.lower).sum()

    def test_structure_contains_a(self, corner_case):
        """Every entry of A's lower triangle appears in L's structure."""
        structs = column_structures(corner_case.lower)
        low = corner_case.lower.tocoo()
        for i, j in zip(low.row, low.col):
            assert i in structs[j]
