"""Unit tests for supernode detection and relaxed amalgamation."""

import numpy as np

from repro.sparse import block_dense_spd, grid_laplacian_2d, tridiagonal_spd
from repro.symbolic import AmalgamationOptions, SymbolicL, detect_supernodes

FUND = AmalgamationOptions(enabled=False)


def fundamental(a):
    return detect_supernodes(SymbolicL(a.lower), FUND)


class TestPartitionInvariants:
    def test_columns_covered_exactly_once(self, corner_case):
        part = fundamental(corner_case)
        n = corner_case.n
        assert part.sn_start[0] == 0 and part.sn_start[-1] == n
        assert np.all(np.diff(part.sn_start) >= 1)
        for s in range(part.nsup):
            assert np.all(part.sn_of_col[part.columns(s)] == s)

    def test_struct_rows_below_supernode(self, corner_case):
        part = fundamental(corner_case)
        for s in range(part.nsup):
            if part.structs[s].size:
                assert part.structs[s].min() > part.last_col(s)
                assert np.all(np.diff(part.structs[s]) > 0)  # sorted unique

    def test_fundamental_columns_share_structure(self, corner_case):
        """Within a fundamental supernode, struct(j) = {j..lc} U struct(sn)."""
        sym = SymbolicL(corner_case.lower)
        part = detect_supernodes(sym, FUND)
        for s in range(part.nsup):
            lc = part.last_col(s)
            for j in part.columns(s):
                expected = np.concatenate([np.arange(j, lc + 1),
                                           part.structs[s]])
                assert np.array_equal(sym.structs[j], expected)

    def test_fundamental_introduces_no_zeros(self, corner_case):
        part = fundamental(corner_case)
        assert part.zeros_introduced == 0

    def test_parent_supernode_consistent(self, corner_case):
        part = fundamental(corner_case)
        for s in range(part.nsup):
            if part.structs[s].size:
                assert part.parent_sn[s] == part.sn_of_col[part.structs[s][0]]
                assert part.parent_sn[s] > s
            else:
                assert part.parent_sn[s] == -1


class TestSpecificPartitions:
    def test_dense_block_single_supernode(self):
        a = block_dense_spd(1, 6)
        part = fundamental(a)
        assert part.nsup == 1
        assert part.width(0) == 6

    def test_chained_dense_blocks(self):
        a = block_dense_spd(3, 5)
        part = fundamental(a)
        # Each dense block forms at most 2 supernodes (the chain coupling
        # splits structure at the boundary columns).
        assert part.nsup <= 6

    def test_tridiagonal_all_singletons_merge_chain(self):
        a = tridiagonal_spd(10)
        part = fundamental(a)
        # Tridiagonal: struct(j) = {j, j+1}; counts differ by 0 each step,
        # so every column pair merges: count(j-1)=2, count(j)=2 -> no merge
        # (needs count(j-1) == count(j)+1). Only the last pair merges.
        assert part.nsup == 9
        assert part.width(part.nsup - 1) == 2


class TestAmalgamation:
    def test_reduces_supernode_count(self):
        a = grid_laplacian_2d(12, 12)
        sym = SymbolicL(a.lower)
        fund = detect_supernodes(sym, FUND)
        relaxed = detect_supernodes(sym, AmalgamationOptions(
            enabled=True, max_zeros_ratio=0.3, max_width=64))
        assert relaxed.nsup <= fund.nsup
        assert relaxed.zeros_introduced >= 0

    def test_zero_budget_equals_fundamental(self, corner_case):
        sym = SymbolicL(corner_case.lower)
        fund = detect_supernodes(sym, FUND)
        strict = detect_supernodes(sym, AmalgamationOptions(
            enabled=True, max_zeros_ratio=0.0, max_width=10**9))
        # With zero budget only free merges (no new zeros) happen; storage
        # must not grow.
        assert strict.factor_nnz() <= fund.factor_nnz()
        assert strict.zeros_introduced == 0

    def test_max_width_bounds_merges(self):
        """max_width caps *merged* groups; fundamental supernodes wider
        than the cap are left intact (splitting would add no benefit)."""
        a = grid_laplacian_2d(10, 10)
        sym = SymbolicL(a.lower)
        fund_widths = np.diff(detect_supernodes(sym, FUND).sn_start)
        part = detect_supernodes(sym, AmalgamationOptions(
            enabled=True, max_zeros_ratio=1.0, max_width=8))
        for w in np.diff(part.sn_start):
            assert w <= max(8, fund_widths.max())

    def test_struct_still_union_of_members(self):
        a = grid_laplacian_2d(9, 9)
        sym = SymbolicL(a.lower)
        part = detect_supernodes(sym, AmalgamationOptions(
            enabled=True, max_zeros_ratio=0.5, max_width=32))
        for s in range(part.nsup):
            lc = part.last_col(s)
            expected = np.unique(np.concatenate(
                [sym.structs[j][sym.structs[j] > lc]
                 for j in part.columns(s)]))
            assert np.array_equal(part.structs[s], expected)

    def test_columns_still_partitioned(self, corner_case):
        sym = SymbolicL(corner_case.lower)
        part = detect_supernodes(sym, AmalgamationOptions(enabled=True))
        assert part.sn_start[-1] == corner_case.n
        widths = np.diff(part.sn_start)
        assert widths.sum() == corner_case.n


class TestFactorNnz:
    def test_fundamental_matches_column_counts(self, corner_case):
        """Fundamental supernodal storage (triangles) equals nnz(L)."""
        sym = SymbolicL(corner_case.lower)
        part = detect_supernodes(sym, FUND)
        assert part.factor_nnz() == sym.nnz
