"""API hygiene meta-tests: every public item is documented and exported
names actually exist (deliverable: doc comments on every public item)."""

import importlib
import inspect

import pytest

PUBLIC_MODULES = [
    "repro",
    "repro.sparse",
    "repro.ordering",
    "repro.symbolic",
    "repro.kernels",
    "repro.pgas",
    "repro.machine",
    "repro.core",
    "repro.baselines",
    "repro.variants",
    "repro.bench",
    "repro.cli",
]


@pytest.mark.parametrize("modname", PUBLIC_MODULES)
class TestPublicApi:
    def test_module_docstring(self, modname):
        mod = importlib.import_module(modname)
        assert mod.__doc__ and mod.__doc__.strip(), f"{modname} undocumented"

    def test_all_exports_resolve(self, modname):
        mod = importlib.import_module(modname)
        for name in getattr(mod, "__all__", []):
            assert hasattr(mod, name), f"{modname}.__all__ lists missing {name}"

    def test_public_callables_documented(self, modname):
        mod = importlib.import_module(modname)
        for name in getattr(mod, "__all__", []):
            obj = getattr(mod, name)
            if inspect.isfunction(obj) or inspect.isclass(obj):
                assert obj.__doc__ and obj.__doc__.strip(), (
                    f"{modname}.{name} lacks a docstring"
                )

    def test_public_methods_documented(self, modname):
        mod = importlib.import_module(modname)
        for name in getattr(mod, "__all__", []):
            obj = getattr(mod, name)
            if not inspect.isclass(obj):
                continue
            for meth_name, meth in inspect.getmembers(obj,
                                                      inspect.isfunction):
                if meth_name.startswith("_"):
                    continue
                if meth.__qualname__.split(".")[0] != obj.__name__:
                    continue  # inherited
                assert meth.__doc__ and meth.__doc__.strip(), (
                    f"{modname}.{name}.{meth_name} lacks a docstring"
                )
