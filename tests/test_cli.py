"""Tests of the ``python -m repro`` command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.sparse import random_spd, write_matrix_market, write_rutherford_boeing


@pytest.fixture
def mtx_file(tmp_path):
    a = random_spd(30, density=0.15, seed=4)
    path = tmp_path / "test.mtx"
    write_matrix_market(path, a)
    return str(path)


@pytest.fixture
def rb_file(tmp_path):
    a = random_spd(25, density=0.2, seed=5)
    path = tmp_path / "test.rb"
    write_rutherford_boeing(path, a)
    return str(path)


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_all_subcommands_parse(self):
        p = build_parser()
        p.parse_args(["solve", "m.mtx"])
        p.parse_args(["generate", "flan", "out.mtx"])
        p.parse_args(["info", "m.mtx"])
        p.parse_args(["bench", "table1"])
        p.parse_args(["tune"])
        p.parse_args(["resolve", "--factor", "f.npz"])
        p.parse_args(["serve", "spool", "--workers", "2", "--once"])
        p.parse_args(["submit", "spool", "m.mtx", "--nrhs", "2", "--wait"])


class TestSolve:
    def test_solve_mtx(self, mtx_file, capsys):
        rc = main(["solve", mtx_file, "--nranks", "2", "--no-gpu"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "relative residual" in out

    def test_solve_rb(self, rb_file, capsys):
        rc = main(["solve", rb_file, "--nranks", "2", "--no-gpu"])
        assert rc == 0

    def test_solve_other_machines(self, mtx_file):
        for machine in ("frontier", "aurora"):
            assert main(["solve", mtx_file, "--machine", machine]) == 0

    def test_unsupported_format(self, tmp_path):
        bad = tmp_path / "m.xyz"
        bad.write_text("")
        with pytest.raises(SystemExit):
            main(["solve", str(bad)])

    def test_seed_changes_rhs(self, mtx_file, capsys):
        assert main(["solve", mtx_file, "--no-gpu", "--seed", "1"]) == 0
        out1 = capsys.readouterr().out
        assert main(["solve", mtx_file, "--no-gpu", "--seed", "1"]) == 0
        out2 = capsys.readouterr().out
        assert out1 == out2                       # same seed: reproducible


class TestResolve:
    def test_solve_save_then_resolve(self, mtx_file, tmp_path, capsys):
        factor = str(tmp_path / "f.npz")
        assert main(["solve", mtx_file, "--no-gpu",
                     "--save-factor", factor]) == 0
        assert "factor saved" in capsys.readouterr().out

        assert main(["resolve", "--factor", factor]) == 0
        out = capsys.readouterr().out
        assert "logdet(A)" in out
        assert "residual" in out

    def test_resolve_with_matrix(self, mtx_file, tmp_path, capsys):
        factor = str(tmp_path / "f.npz")
        main(["solve", mtx_file, "--no-gpu", "--save-factor", factor])
        capsys.readouterr()
        assert main(["resolve", "--factor", factor, "--matrix", mtx_file,
                     "--nrhs", "2"]) == 0
        assert "residual" in capsys.readouterr().out


class TestServeSubmit:
    def test_spool_round_trip(self, mtx_file, tmp_path, capsys):
        spool = str(tmp_path / "spool")
        assert main(["submit", spool, mtx_file, "--seed", "3"]) == 0
        assert main(["submit", spool, mtx_file, "--seed", "4"]) == 0
        capsys.readouterr()
        assert main(["serve", spool, "--workers", "1", "--no-gpu",
                     "--once"]) == 0
        out = capsys.readouterr().out
        assert "processed        : 2 requests" in out
        assert "hit rate" in out

    def test_submit_wait(self, mtx_file, tmp_path, capsys):
        import threading

        spool = str(tmp_path / "spool")
        server = threading.Thread(
            target=main,
            args=(["serve", spool, "--workers", "1", "--no-gpu",
                   "--max-requests", "1"],))
        server.start()
        try:
            rc = main(["submit", spool, mtx_file, "--wait",
                       "--timeout", "60"])
        finally:
            server.join(timeout=60)
        assert rc == 0
        out = capsys.readouterr().out
        assert "tier             : cold" in out
        assert "relative residual" in out


class TestGenerateAndInfo:
    def test_generate_then_info(self, tmp_path, capsys):
        out_path = str(tmp_path / "gen.mtx")
        assert main(["generate", "thermal", out_path, "--scale", "6"]) == 0
        assert main(["info", out_path]) == 0
        out = capsys.readouterr().out
        assert "nnz_L" in out

    def test_generate_rb(self, tmp_path):
        out_path = str(tmp_path / "gen.rb")
        assert main(["generate", "bone", out_path, "--scale", "6"]) == 0
        from repro.sparse import read_rutherford_boeing
        a = read_rutherford_boeing(out_path)
        assert a.n > 0


class TestBench:
    def test_table1(self, capsys):
        assert main(["bench", "table1"]) == 0
        assert "Flan_1565" in capsys.readouterr().out

    def test_fig5(self, capsys):
        assert main(["bench", "fig5"]) == 0
        assert "native" in capsys.readouterr().out

    def test_scaling_small(self, capsys):
        assert main(["bench", "scaling", "--workload", "thermal",
                     "--nodes", "1"]) == 0
        out = capsys.readouterr().out
        assert "Factorization" in out and "Solve" in out

    def test_scaling_export(self, tmp_path, capsys):
        assert main(["bench", "scaling", "--workload", "thermal",
                     "--nodes", "1", "--export", str(tmp_path)]) == 0
        assert (tmp_path / "scaling_thermal_like_6000.csv").exists()
        assert (tmp_path / "scaling_thermal_like_6000.json").exists()

    def test_fig5_export(self, tmp_path):
        assert main(["bench", "fig5", "--export", str(tmp_path)]) == 0
        assert (tmp_path / "memory_kinds.csv").exists()


class TestTune:
    def test_analytical_only(self, capsys):
        assert main(["tune"]) == 0
        out = capsys.readouterr().out
        assert "analytical thresholds" in out

    def test_with_matrix_sweep(self, mtx_file, capsys):
        assert main(["tune", "--matrix", mtx_file, "--nranks", "2"]) == 0
        assert "brute-force sweep" in capsys.readouterr().out
