"""Tests of the fan-both solver (the paper's predecessor algorithm [15])."""

import numpy as np
import pytest

from repro import CPU_ONLY, SolverOptions, SymPackSolver
from repro.sparse import grid_laplacian_2d, random_spd
from repro.variants import FanBothOptions, FanBothSolver


class TestCorrectness:
    @pytest.mark.parametrize("nranks", [1, 2, 4, 6])
    def test_solves_correctly(self, nranks, rng):
        a = random_spd(35, density=0.15, seed=6)
        b = rng.standard_normal(a.n)
        solver = FanBothSolver(a, FanBothOptions(nranks=nranks))
        solver.factorize()
        x, _ = solver.solve(b)
        assert solver.residual_norm(x, b) < 1e-10

    def test_corner_cases(self, corner_case, rng):
        b = rng.standard_normal(corner_case.n)
        solver = FanBothSolver(corner_case, FanBothOptions(nranks=4))
        solver.factorize()
        x, _ = solver.solve(b)
        assert solver.residual_norm(x, b) < 1e-9

    def test_same_factor_as_fanout(self, lap2d):
        """Fan-both generalises fan-out: identical factors."""
        fan_out = SymPackSolver(lap2d, SolverOptions(nranks=4,
                                                     offload=CPU_ONLY))
        fan_out.factorize()
        fan_both = FanBothSolver(lap2d, FanBothOptions(nranks=4))
        fan_both.factorize()
        assert np.allclose(fan_out.storage.to_sparse_factor().toarray(),
                           fan_both.storage.to_sparse_factor().toarray(),
                           atol=1e-12)

    @pytest.mark.parametrize("mapping", ["2d", "1d-col"])
    def test_mapping_schemes(self, mapping, rng):
        a = grid_laplacian_2d(10, 10)
        b = rng.standard_normal(a.n)
        solver = FanBothSolver(a, FanBothOptions(nranks=4, mapping=mapping))
        solver.factorize()
        x, _ = solver.solve(b)
        assert solver.residual_norm(x, b) < 1e-10

    def test_solve_before_factorize_raises(self, lap2d):
        with pytest.raises(RuntimeError):
            FanBothSolver(lap2d).solve(np.ones(lap2d.n))


class TestBothMessageKinds:
    def test_factors_and_aggregates_both_flow(self):
        """The defining fan-both property (paper Section 2.3): 'two kinds
        of messages can be exchanged ... factors and aggregate vectors.'"""
        a = grid_laplacian_2d(14, 14)
        solver = FanBothSolver(a, FanBothOptions(nranks=4))
        solver.factorize()
        graph = solver._factor_graph
        factor_msgs = 0
        aggregate_msgs = 0
        for t in graph.tasks:
            for m in t.messages:
                if t.label.startswith(("D[", "F[")):
                    factor_msgs += 1
                else:
                    aggregate_msgs += 1
        assert factor_msgs > 0, "no factor messages"
        assert aggregate_msgs > 0, "no aggregate-vector messages"

    def test_single_rank_no_messages(self, lap2d):
        solver = FanBothSolver(lap2d, FanBothOptions(nranks=1))
        info = solver.factorize()
        assert info.comm.rpcs_sent == 0
