"""Tests of the fan-in solver (aggregate-vector communication)."""

import numpy as np
import pytest

from repro import CPU_ONLY, SolverOptions, SymPackSolver
from repro.sparse import grid_laplacian_2d, random_spd
from repro.variants import FanInOptions, FanInSolver


class TestCorrectness:
    @pytest.mark.parametrize("nranks", [1, 2, 4, 7])
    def test_solves_correctly(self, nranks, rng):
        a = random_spd(35, density=0.15, seed=3)
        b = rng.standard_normal(a.n)
        solver = FanInSolver(a, FanInOptions(nranks=nranks))
        solver.factorize()
        x, _ = solver.solve(b)
        assert solver.residual_norm(x, b) < 1e-10

    def test_corner_cases(self, corner_case, rng):
        b = rng.standard_normal(corner_case.n)
        solver = FanInSolver(corner_case, FanInOptions(nranks=3))
        solver.factorize()
        x, _ = solver.solve(b)
        assert solver.residual_norm(x, b) < 1e-9

    def test_same_factor_as_fanout(self, lap2d):
        fan_out = SymPackSolver(lap2d, SolverOptions(nranks=4,
                                                     offload=CPU_ONLY))
        fan_out.factorize()
        fan_in = FanInSolver(lap2d, FanInOptions(nranks=4))
        fan_in.factorize()
        l_out = fan_out.storage.to_sparse_factor().toarray()
        l_in = fan_in.storage.to_sparse_factor().toarray()
        assert np.allclose(l_out, l_in, atol=1e-12)

    def test_solve_before_factorize_raises(self, lap2d):
        with pytest.raises(RuntimeError):
            FanInSolver(lap2d).solve(np.ones(lap2d.n))


class TestCommunicationPattern:
    def test_one_aggregate_message_per_rank_target_pair(self):
        """The defining fan-in property: each (source rank, target) pair
        exchanges at most one aggregate message."""
        a = grid_laplacian_2d(12, 12)
        solver = FanInSolver(a, FanInOptions(nranks=4))
        solver.factorize()
        storage_graph = solver._factor_graph
        seen = set()
        for t in storage_graph.tasks:
            for m in t.messages:
                # Each aggregate message feeds exactly one APPLY task, and
                # each (source rank, target) pair has exactly one APPLY —
                # so consumer task ids must never repeat across messages.
                assert len(m.consumers) == 1
                key = (t.rank, m.consumers[0])
                assert key not in seen
                seen.add(key)

    def test_fewer_messages_than_fanout_on_wide_graphs(self):
        """Fan-in coalesces updates into aggregates; for matrices with
        many updates per (rank, target) pair it sends fewer messages."""
        a = grid_laplacian_2d(16, 16)
        fan_in = FanInSolver(a, FanInOptions(nranks=4))
        in_info = fan_in.factorize()
        in_msgs = in_info.comm.rpcs_sent

        fan_out = SymPackSolver(a, SolverOptions(nranks=4, offload=CPU_ONLY))
        info = fan_out.factorize()
        out_msgs = info.comm.rpcs_sent
        assert in_msgs < out_msgs

    def test_single_rank_no_aggregates(self, lap2d):
        solver = FanInSolver(lap2d, FanInOptions(nranks=1))
        result = solver.factorize()
        assert result.comm.rpcs_sent == 0
        assert result.tasks > 0
