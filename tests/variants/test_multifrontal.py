"""Tests of the multifrontal (MUMPS-like) solver and proportional mapping."""

import numpy as np
import pytest

from repro import CPU_ONLY, SolverOptions, SymPackSolver
from repro.sparse import grid_laplacian_2d, random_spd, thermal_like
from repro.symbolic import analyze
from repro.variants import (
    MultifrontalOptions,
    MultifrontalSolver,
    proportional_supernode_mapping,
)


class TestCorrectness:
    @pytest.mark.parametrize("nranks", [1, 2, 4, 6])
    def test_solves_correctly(self, nranks, rng):
        a = random_spd(35, density=0.15, seed=9)
        b = rng.standard_normal(a.n)
        solver = MultifrontalSolver(a, MultifrontalOptions(nranks=nranks))
        solver.factorize()
        x, _ = solver.solve(b)
        assert solver.residual_norm(x, b) < 1e-10

    def test_corner_cases(self, corner_case, rng):
        b = rng.standard_normal(corner_case.n)
        solver = MultifrontalSolver(corner_case,
                                    MultifrontalOptions(nranks=2))
        solver.factorize()
        x, _ = solver.solve(b)
        assert solver.residual_norm(x, b) < 1e-9

    def test_same_factor_as_fanout(self, lap2d):
        """Three algorithm families, one factor: multifrontal must produce
        the identical L (it is the same math, reorganised)."""
        fan_out = SymPackSolver(lap2d, SolverOptions(nranks=2,
                                                     offload=CPU_ONLY))
        fan_out.factorize()
        mf = MultifrontalSolver(lap2d, MultifrontalOptions(nranks=2))
        mf.factorize()
        assert np.allclose(fan_out.storage.to_sparse_factor().toarray(),
                           mf.storage.to_sparse_factor().toarray(),
                           atol=1e-11)

    @pytest.mark.parametrize("mapping", ["proportional", "cyclic"])
    def test_both_mappings(self, mapping, rng):
        a = grid_laplacian_2d(10, 10)
        b = rng.standard_normal(a.n)
        solver = MultifrontalSolver(a, MultifrontalOptions(nranks=4,
                                                           mapping=mapping))
        solver.factorize()
        x, _ = solver.solve(b)
        assert solver.residual_norm(x, b) < 1e-10

    def test_unknown_mapping_rejected(self, lap2d):
        with pytest.raises(ValueError):
            MultifrontalSolver(lap2d, MultifrontalOptions(mapping="hilbert"))


class TestTaskStructure:
    def test_one_front_per_supernode(self, lap2d):
        solver = MultifrontalSolver(lap2d, MultifrontalOptions(nranks=2))
        result = solver.factorize()
        assert result.tasks == solver.analysis.nsup

    def test_messages_follow_assembly_tree(self):
        """Message count <= number of cross-rank parent edges."""
        a = grid_laplacian_2d(12, 12)
        solver = MultifrontalSolver(a, MultifrontalOptions(nranks=4))
        solver.factorize()
        part = solver.analysis.supernodes
        cross = sum(
            1 for s in range(part.nsup)
            if part.parent_sn[s] >= 0
            and solver._owner_of[s] != solver._owner_of[part.parent_sn[s]]
        )
        # Every cross edge is exactly one contribution-block message.
        assert solver.trace.tasks_executed == part.nsup
        assert cross >= 0  # and the run completed


class TestProportionalMapping:
    def test_valid_ranks(self):
        a = grid_laplacian_2d(14, 14)
        an = analyze(a)
        owner = proportional_supernode_mapping(an, 8)
        assert owner.min() >= 0 and owner.max() < 8
        assert owner.size == an.nsup

    def test_uses_multiple_ranks(self):
        a = grid_laplacian_2d(14, 14)
        an = analyze(a)
        owner = proportional_supernode_mapping(an, 8)
        assert len(set(owner.tolist())) > 1

    def test_single_rank_all_zero(self, lap2d):
        an = analyze(lap2d)
        owner = proportional_supernode_mapping(an, 1)
        assert (owner == 0).all()

    def test_subtree_locality(self):
        """Most parent-child assembly edges stay on one rank (the point of
        proportional mapping): strictly fewer cross edges than cyclic."""
        a = thermal_like(n=800, seed=4)
        an = analyze(a)
        part = an.supernodes
        prop = proportional_supernode_mapping(an, 8)
        cyc = np.arange(an.nsup) % 8

        def cross(owner):
            return sum(1 for s in range(part.nsup)
                       if part.parent_sn[s] >= 0
                       and owner[s] != owner[part.parent_sn[s]])

        assert cross(prop) < cross(cyc)

    def test_balanced_work(self):
        """No rank gets more than ~3x the mean subtree work."""
        a = grid_laplacian_2d(16, 16)
        an = analyze(a)
        nranks = 4
        owner = proportional_supernode_mapping(an, nranks)
        part = an.supernodes
        from repro.kernels import flops as kf
        loads = np.zeros(nranks)
        for s in range(an.nsup):
            w = part.width(s)
            m = part.structs[s].size
            loads[owner[s]] += (kf.potrf_flops(w) + kf.trsm_flops(m, w)
                                + kf.syrk_flops(m, w))
        assert loads.max() < 3.0 * loads.mean()
